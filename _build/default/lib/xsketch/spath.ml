let strip_edge_hists sketch =
  let syn = Sketch.synopsis sketch in
  let cfg = Sketch.config sketch in
  let especs = Array.make (Array.length cfg.Sketch.especs) [] in
  Sketch.build syn { Sketch.especs; vbudgets = cfg.Sketch.vbudgets }

let estimate_path sketch p = Estimator.estimate_path (strip_edge_hists sketch) p

let estimate sketch t = Estimator.estimate (strip_edge_hists sketch) t
