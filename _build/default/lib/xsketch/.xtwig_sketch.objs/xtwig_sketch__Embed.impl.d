lib/xsketch/embed.ml: Format List Printf String Xtwig_path Xtwig_synopsis Xtwig_xml
