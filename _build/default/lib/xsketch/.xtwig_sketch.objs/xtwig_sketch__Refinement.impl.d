lib/xsketch/refinement.ml: Array Float Fun Hashtbl List Option Printf Sketch Stdlib Xtwig_hist Xtwig_synopsis Xtwig_util Xtwig_xml
