lib/xsketch/treeparse.ml: Array Embed Format List Printf Sketch String Xtwig_synopsis
