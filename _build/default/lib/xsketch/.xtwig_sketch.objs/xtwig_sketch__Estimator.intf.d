lib/xsketch/estimator.mli: Embed Sketch Xtwig_path
