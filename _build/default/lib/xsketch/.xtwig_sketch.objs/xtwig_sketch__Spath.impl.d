lib/xsketch/spath.ml: Array Estimator Sketch
