lib/xsketch/sketch_io.ml: Array Buffer Fun In_channel List Printf Sketch String Xtwig_synopsis Xtwig_xml
