lib/xsketch/xbuild.mli: Refinement Sketch Xtwig_path Xtwig_util Xtwig_xml
