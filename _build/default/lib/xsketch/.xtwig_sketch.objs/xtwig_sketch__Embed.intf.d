lib/xsketch/embed.mli: Format Xtwig_path Xtwig_synopsis
