lib/xsketch/xbuild.ml: Array Domain Estimator Float Fun List Refinement Seq Sketch Stdlib Xtwig_util
