lib/xsketch/sketch_io.mli: Sketch Xtwig_xml
