lib/xsketch/sketch.mli: Format Xtwig_hist Xtwig_path Xtwig_synopsis Xtwig_xml
