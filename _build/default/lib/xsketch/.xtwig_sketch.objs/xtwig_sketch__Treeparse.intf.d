lib/xsketch/treeparse.mli: Embed Format Sketch Xtwig_synopsis
