lib/xsketch/estimator.ml: Array Embed Hashtbl List Obj Sketch Stdlib Xtwig_hist Xtwig_path Xtwig_synopsis
