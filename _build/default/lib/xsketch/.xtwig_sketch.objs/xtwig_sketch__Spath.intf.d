lib/xsketch/spath.mli: Sketch Xtwig_path
