lib/xsketch/sketch.ml: Array Format List Xtwig_hist Xtwig_path Xtwig_synopsis Xtwig_xml
