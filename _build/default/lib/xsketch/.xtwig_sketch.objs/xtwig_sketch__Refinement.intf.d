lib/xsketch/refinement.mli: Sketch Xtwig_util
