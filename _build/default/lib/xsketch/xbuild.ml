module Prng = Xtwig_util.Prng
module Stats = Xtwig_util.Stats

type step_info = {
  step : int;
  op : Refinement.op;
  description : string;
  size : int;
  workload_error : float;
}

let workload_error sketch ~truth queries =
  match queries with
  | [] -> 0.0
  | _ ->
      let truths = Array.of_list (List.map truth queries) in
      let positive = Array.of_list (List.filter (fun c -> c > 0.0) (Array.to_list truths)) in
      let sanity =
        if Array.length positive = 0 then 1.0 else Stats.percentile positive 10.0
      in
      let errs =
        List.mapi
          (fun i q ->
            let est = Estimator.estimate sketch q in
            let c = truths.(i) in
            Float.abs (est -. c) /. Stdlib.max sanity c)
          queries
      in
      Stats.mean_list errs

let build ?(seed = 42) ?(candidates = 8) ?(max_steps = 400) ?(ebudget0 = 1)
    ?(vbudget0 = 2) ?on_step ~workload ~truth ~budget doc =
  let prng = Prng.create seed in
  let sketch = ref (Sketch.default_of_doc ~ebudget:ebudget0 ~vbudget:vbudget0 doc) in
  (* a fixed anchor workload keeps candidate scores comparable across
     steps; per-step queries focused on the touched regions are added
     on top (the paper's region-local sampling) *)
  let anchor = workload prng ~focus:[] in
  let step = ref 0 in
  let continue = ref true in
  while !continue && Sketch.size_bytes !sketch < budget && !step < max_steps do
    incr step;
    let pool = Refinement.gen_candidates ~count:candidates !sketch prng in
    if pool = [] then continue := false
    else begin
      let focus =
        List.sort_uniq compare
          (List.concat_map (Refinement.touched_labels !sketch) pool)
      in
      let queries = anchor @ workload prng ~focus in
      (* force the truth cache on the current thread before fanning out *)
      List.iter (fun q -> ignore (truth q)) queries;
      let base_error = workload_error !sketch ~truth queries in
      let base_size = Sketch.size_bytes !sketch in
      let score op =
        let refined = Refinement.apply !sketch op in
        let size = Sketch.size_bytes refined in
        if size <= base_size then None
        else
          let err = workload_error refined ~truth queries in
          let gain = (base_error -. err) /. float_of_int (size - base_size) in
          Some (gain, op, refined, size, err)
      in
      (* candidates are independent; score them on parallel domains *)
      let scored =
        let n_dom =
          Stdlib.min (List.length pool)
            (Stdlib.max 1 (Domain.recommended_domain_count () - 1))
        in
        if n_dom <= 1 then List.filter_map score pool
        else begin
          let arr = Array.of_list pool in
          let slices =
            List.init n_dom (fun d ->
                Array.to_list
                  (Array.of_seq
                     (Seq.filter_map
                        (fun i -> if i mod n_dom = d then Some arr.(i) else None)
                        (Seq.init (Array.length arr) Fun.id))))
          in
          let domains =
            List.map
              (fun slice -> Domain.spawn (fun () -> List.filter_map score slice))
              slices
          in
          List.concat_map Domain.join domains
        end
      in
      match scored with
      | [] -> continue := false
      | _ ->
          let best =
            List.fold_left
              (fun acc ((g, _, _, _, _) as cand) ->
                match acc with
                | Some (g0, _, _, _, _) when g0 >= g -> acc
                | _ -> Some cand)
              None scored
          in
          (match best with
          | None -> continue := false
          | Some (_, op, refined, size, err) ->
              let description = Refinement.describe !sketch op in
              sketch := refined;
              (match on_step with
              | None -> ()
              | Some f ->
                  f refined
                    { step = !step; op; description; size; workload_error = err }))
    end
  done;
  !sketch
