module G = Xtwig_synopsis.Graph_synopsis
module Tsn = Xtwig_synopsis.Tsn
module Doc = Xtwig_xml.Doc
module Value = Xtwig_xml.Value
module Edge_hist = Xtwig_hist.Edge_hist
module Sparse_dist = Xtwig_hist.Sparse_dist
module Hist1d = Xtwig_hist.Hist1d

type dim_kind = Forward | Backward

type dim = { src : int; dst : int; kind : dim_kind }

type hist_spec = { dims : dim list; budget : int }

type config = { especs : hist_spec list array; vbudgets : int array }

type t = {
  syn : G.t;
  config : config;
  ehists : (dim array * Edge_hist.t) list array;
  vhists : Hist1d.t option array;
  vcats : Xtwig_hist.Mcv.t option array;
}

(* ------------------------------------------------------------------ *)
(* Distribution computation                                            *)

(* Count of [e]'s children lying in synopsis node [z]. *)
let forward_count syn e z =
  let doc = G.doc syn in
  Array.fold_left
    (fun acc k -> if G.node_of_elem syn k = z then acc + 1 else acc)
    0 (Doc.children doc e)

(* The (unique, B-stable-chain) ancestor of [e] in node [a], if any. *)
let ancestor_in syn e a =
  let doc = G.doc syn in
  let rec up e =
    if G.node_of_elem syn e = a then Some e
    else match Doc.parent doc e with None -> None | Some p -> up p
  in
  up e

let count_for_dim syn n e d =
  match d.kind with
  | Forward -> forward_count syn e d.dst
  | Backward -> (
      ignore n;
      match ancestor_in syn e d.src with
      | Some anc -> forward_count syn anc d.dst
      | None -> 0)

let distribution_of syn n dims =
  let k = Array.length dims in
  let vectors =
    Array.to_list
      (Array.map
         (fun e -> Array.init k (fun i -> count_for_dim syn n e dims.(i)))
         (G.extent syn n))
  in
  Sparse_dist.of_vectors ~dims:k vectors

(* ------------------------------------------------------------------ *)
(* Build                                                               *)

let valid_dims syn n dims =
  let eligible = Tsn.scope_edges syn n in
  List.filter
    (fun d ->
      List.mem (d.src, d.dst) eligible
      &&
      match d.kind with
      | Forward -> d.src = n
      | Backward -> d.src <> n)
    dims

let build ?prev syn config =
  let n_nodes = G.node_count syn in
  if Array.length config.especs <> n_nodes || Array.length config.vbudgets <> n_nodes
  then invalid_arg "Sketch.build: config arity mismatch";
  let reusable =
    match prev with
    | Some p when p.syn == syn -> Some p
    | Some _ | None -> None
  in
  let ehists =
    Array.init n_nodes (fun n ->
        match reusable with
        | Some p when p.config.especs.(n) = config.especs.(n) -> p.ehists.(n)
        | _ ->
            List.filter_map
              (fun spec ->
                match valid_dims syn n spec.dims with
                | [] -> None
                | dims ->
                    let dims = Array.of_list dims in
                    let dist = distribution_of syn n dims in
                    Some (dims, Edge_hist.build ~budget:spec.budget dist))
              config.especs.(n))
  in
  let doc = G.doc syn in
  let vhists =
    Array.init n_nodes (fun n ->
        match reusable with
        | Some p when p.config.vbudgets.(n) = config.vbudgets.(n) -> p.vhists.(n)
        | _ ->
            if config.vbudgets.(n) <= 0 then None
            else
              let data =
                Array.to_list (G.extent syn n)
                |> List.filter_map (fun e -> Value.as_float (Doc.value doc e))
              in
              (match data with
              | [] -> None
              | _ ->
                  Some
                    (Hist1d.build ~budget:config.vbudgets.(n) (Array.of_list data))))
  in
  let vcats =
    Array.init n_nodes (fun n ->
        match reusable with
        | Some p when p.config.vbudgets.(n) = config.vbudgets.(n) -> p.vcats.(n)
        | _ ->
            if config.vbudgets.(n) <= 0 then None
            else
              (* text values that are not merely numbers in disguise *)
              let data =
                Array.to_list (G.extent syn n)
                |> List.filter_map (fun e ->
                       match Doc.value doc e with
                       | Value.Text s when Value.as_float (Value.Text s) = None ->
                           Some s
                       | Value.Text _ | Value.Null | Value.Int _ | Value.Float _ ->
                           None)
              in
              (match data with
              | [] -> None
              | _ -> Some (Xtwig_hist.Mcv.build ~budget:config.vbudgets.(n) data)))
  in
  { syn; config; ehists; vhists; vcats }

let coarsest ?(ebudget = 1) ?(vbudget = 2) syn =
  let n_nodes = G.node_count syn in
  let especs =
    Array.init n_nodes (fun n ->
        List.filter_map
          (fun (e : G.edge) ->
            if e.f_stable then
              Some
                {
                  dims = [ { src = n; dst = e.dst; kind = Forward } ];
                  budget = ebudget;
                }
            else None)
          (G.out_edges syn n))
  in
  let vbudgets = Array.make n_nodes vbudget in
  build syn { especs; vbudgets }

let default_of_doc ?ebudget ?vbudget doc =
  coarsest ?ebudget ?vbudget (G.label_split doc)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let synopsis t = t.syn
let doc t = G.doc t.syn
let config t = t.config
let hists t n = t.ehists.(n)
let vhist t n = t.vhists.(n)
let vcat t n = t.vcats.(n)
let node_count t = G.node_count t.syn

let covering_hist t n d =
  let rec scan = function
    | [] -> None
    | (dims, h) :: rest -> (
        let idx = ref (-1) in
        Array.iteri (fun i d' -> if d' = d then idx := i) dims;
        match !idx with -1 -> scan rest | i -> Some (dims, h, i))
  in
  scan t.ehists.(n)

let avg_fanout t ~src ~dst =
  match G.edge t.syn ~src ~dst with
  | None -> 0.0
  | Some e ->
      let n = G.extent_size t.syn src in
      if n = 0 then 0.0 else float_of_int e.count /. float_of_int n

let exist_frac t ~src ~dst =
  match G.edge t.syn ~src ~dst with
  | None -> 0.0
  | Some e ->
      let n = G.extent_size t.syn src in
      if n = 0 then 0.0 else float_of_int e.src_with_child /. float_of_int n

let value_frac t n pred =
  match (pred : Xtwig_path.Path_types.value_pred) with
  (* string equality goes to the categorical summary *)
  | Cmp (Eq, Value.Text s) when Value.as_float (Value.Text s) = None -> (
      match t.vcats.(n) with
      | Some m -> Xtwig_hist.Mcv.frac_eq m s
      | None -> 0.1)
  | Cmp (Ne, Value.Text s) when Value.as_float (Value.Text s) = None -> (
      match t.vcats.(n) with
      | Some m -> Xtwig_hist.Mcv.frac_ne m s
      | None -> 0.9)
  | _ -> (
      match t.vhists.(n) with
      | None -> 0.1
      | Some h -> (
          match pred with
          | Range (lo, hi) -> Hist1d.frac_range h lo hi
          | Cmp (op, v) -> (
              match Value.as_float v with
              | None -> 0.1
              | Some x ->
                  let op' =
                    match op with
                    | Xtwig_path.Path_types.Lt -> `Lt
                    | Le -> `Le
                    | Eq -> `Eq
                    | Ne -> `Ne
                    | Ge -> `Ge
                    | Gt -> `Gt
                  in
                  Hist1d.frac_cmp h op' x)))

(* ------------------------------------------------------------------ *)
(* Size accounting                                                     *)

let size_bytes t =
  let structural = G.structure_bytes t.syn in
  let ebytes =
    Array.fold_left
      (fun acc hs ->
        List.fold_left
          (fun acc (dims, h) ->
            acc + Edge_hist.size_bytes h + (8 * Array.length dims))
          acc hs)
      0 t.ehists
  in
  let vbytes =
    Array.fold_left
      (fun acc vh ->
        match vh with None -> acc | Some h -> acc + Hist1d.size_bytes h)
      0 t.vhists
  in
  let cbytes =
    Array.fold_left
      (fun acc vc ->
        match vc with None -> acc | Some m -> acc + Xtwig_hist.Mcv.size_bytes m)
      0 t.vcats
  in
  structural + ebytes + vbytes + cbytes

let pp_stats ppf t =
  let nh = Array.fold_left (fun a l -> a + List.length l) 0 t.ehists in
  let nv =
    Array.fold_left (fun a v -> match v with Some _ -> a + 1 | None -> a) 0 t.vhists
  in
  Format.fprintf ppf "xsketch: %a; %d edge-hists, %d value-hists, %d bytes"
    G.pp_stats t.syn nh nv (size_bytes t)

(* ------------------------------------------------------------------ *)
(* Exact references                                                    *)

let exact_for_scopes syn groupings =
  let n_nodes = G.node_count syn in
  if Array.length groupings <> n_nodes then
    invalid_arg "Sketch.exact_for_scopes: arity mismatch";
  let especs =
    Array.map
      (fun groups -> List.map (fun dims -> { dims; budget = max_int }) groups)
      groupings
  in
  let vbudgets = Array.make n_nodes max_int in
  build syn { especs; vbudgets }

let dim_edges_of_node t n = Tsn.scope_edges t.syn n

let distribution t n dims = distribution_of t.syn n dims
