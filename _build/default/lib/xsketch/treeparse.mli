(** The TREEPARSE decomposition (Figure 7 of the paper).

    Given a twig embedding over a sketch, computes for every internal
    embedding node [t_i] the three count sets that shape the
    selectivity expression:

    - the {e expansion set} [E_i]: dimensions of the node's histograms
      not yet covered upstream — these are summed over jointly;
    - the {e uncovered set} [U_i]: edges to embedding children not
      covered by any histogram — these contribute Forward-Uniformity
      average-fanout factors;
    - the {e correlation set} [D_i]: dimensions of the node's
      histograms already covered upstream — these condition the
      node's distribution on its ancestors' expansion.

    {!Estimator} implements the same decomposition operationally; this
    module exposes it declaratively, mainly for tests and inspection. *)

type sets = {
  expansion : (int * int) list;  (** E_i, as synopsis edges *)
  uncovered : (int * int) list;  (** U_i *)
  correlation : (int * int) list;  (** D_i *)
}

val parse : Sketch.t -> Embed.enode -> (Embed.enode * sets) list
(** Depth-first (pre-order) traversal; leaf embedding nodes are
    skipped, as in the paper's pseudo-code. *)

val pp :
  Xtwig_synopsis.Graph_synopsis.t ->
  Format.formatter ->
  (Embed.enode * sets) list ->
  unit
