(** The paper's running examples as concrete documents and queries.

    These fixtures pin the implementation to the paper: the test suite
    checks the exact numbers the paper derives from them (3 binding
    tuples for Example 2.1, the 2000-vs-10100 discrimination of
    Figure 4, the 10/3 estimate of Section 4). *)

val bibliography : unit -> Xtwig_xml.Doc.t
(** The Figure 1 bibliography document: a root containing three
    [author] elements, each with a [name] and one or more [paper]s
    (with [title], [year], [keyword]s) and possibly a [book] (with
    [title]). Consistent with Example 2.1: the twig
    {!example_2_1_query} has exactly 3 binding tuples. *)

val example_2_1_query : unit -> Xtwig_path.Path_types.twig
(** [for t0 in //author, t1 in t0/name, t2 in t0/paper\[year > 2000\],
    t3 in t2/title, t4 in t2/keyword]. *)

val figure_4_doc_a : unit -> Xtwig_xml.Doc.t
(** Two [a] elements under the root: one with 10 [b] and 100 [c]
    children, one with 100 [b] and 10 [c]. *)

val figure_4_doc_b : unit -> Xtwig_xml.Doc.t
(** Two [a] elements: one with 10 [b] and 10 [c], one with 100 [b] and
    100 [c] children. Same single-path selectivities as
    {!figure_4_doc_a} for every path, but the pairing twig
    {!figure_4_query} has selectivity 10100 here vs 2000 there. *)

val figure_4_query : unit -> Xtwig_path.Path_types.twig
(** [for t0 in //a, t1 in t0/b, t2 in t0/c]. *)

val movie_fragment : unit -> Xtwig_xml.Doc.t
(** The introduction's movie example, small scale: [movie] elements
    with [type], [actor]s and [producer]s, where action movies have
    many actors/producers and documentaries few. *)
