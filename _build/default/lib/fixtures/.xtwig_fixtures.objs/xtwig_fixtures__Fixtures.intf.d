lib/fixtures/fixtures.mli: Xtwig_path Xtwig_xml
