lib/fixtures/fixtures.ml: List Printf Xtwig_path Xtwig_xml
