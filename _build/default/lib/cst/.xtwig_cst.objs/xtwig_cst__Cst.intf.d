lib/cst/cst.mli: Xtwig_path Xtwig_xml
