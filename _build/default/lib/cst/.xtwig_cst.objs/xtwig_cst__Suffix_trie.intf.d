lib/cst/suffix_trie.mli: Xtwig_xml
