lib/cst/suffix_trie.ml: Hashtbl List Stdlib Xtwig_xml
