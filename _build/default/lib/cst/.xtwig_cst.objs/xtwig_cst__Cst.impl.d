lib/cst/cst.ml: Hashtbl List Stdlib String Suffix_trie Xtwig_path
