open Xtwig_path.Path_types

type t = {
  trie : Suffix_trie.t;
  memo : (string, float) Hashtbl.t;
}

let build ?budget_bytes doc =
  let trie = Suffix_trie.build doc in
  (match budget_bytes with
  | Some b -> Suffix_trie.prune trie ~budget_bytes:b
  | None -> ());
  { trie; memo = Hashtbl.create 256 }

let size_bytes t = Suffix_trie.size_bytes t.trie

let key seq = String.concat "\x00" seq

(* Maximal-overlap count estimate for a label sequence. *)
let rec count t seq =
  match seq with
  | [] -> 0.0
  | _ -> (
      match Hashtbl.find_opt t.memo (key seq) with
      | Some c -> c
      | None ->
          let c =
            match Suffix_trie.lookup t.trie seq with
            | Some n -> float_of_int n
            | None ->
                if not (Suffix_trie.existed t.trie seq) then 0.0
                else (
                  match seq with
                  | [] | [ _ ] -> 0.0
                  | _ ->
                      let init = List.filteri (fun i _ -> i < List.length seq - 1) seq in
                      let tail = List.tl seq in
                      let tail_init =
                        List.filteri (fun i _ -> i < List.length tail - 1) tail
                      in
                      let denom = count t tail_init in
                      if denom <= 0.0 then 0.0
                      else count t init *. count t tail /. denom)
          in
          Hashtbl.replace t.memo (key seq) c;
          c)

let path_count t ~anchored seq =
  if anchored then count t (Suffix_trie.anchor :: seq) else count t seq

(* Label sequence of a path; interior '//' approximated as '/'. *)
let labels_of_path p = List.map (fun s -> s.label) p

let anchored_root p =
  match p with { axis = Child; _ } :: _ -> true | _ -> false

(* Existence factor of the branching predicates along [p]'s steps,
   each evaluated against the sequence prefix ending at its step. *)
let rec branch_factor t ctx (p : path) =
  let rec walk acc prefix = function
    | [] -> acc
    | s :: rest ->
        let prefix = prefix @ [ s.label ] in
        let acc =
          List.fold_left
            (fun acc b -> acc *. Stdlib.min 1.0 (match_ratio t prefix b))
            acc s.branches
        in
        walk acc prefix rest
  in
  walk 1.0 ctx p

(* Expected matches of [p] per binding of the context sequence,
   including nested branch factors. *)
and match_ratio t ctx (p : path) =
  let seq = ctx @ labels_of_path p in
  let c_ctx = count t ctx in
  if c_ctx <= 0.0 then 0.0
  else count t seq /. c_ctx *. branch_factor t ctx p

let estimate t (twig : twig) =
  let root_ctx = if anchored_root twig.path then [ Suffix_trie.anchor ] else [] in
  let root_seq = root_ctx @ labels_of_path twig.path in
  let c_root = count t root_seq *. branch_factor t root_ctx twig.path in
  let rec tw ctx (node : twig) =
    let seq = ctx @ labels_of_path node.path in
    let ratio = match_ratio t ctx node.path in
    List.fold_left (fun acc sub -> acc *. tw seq sub) ratio node.subs
  in
  List.fold_left (fun acc sub -> acc *. tw root_seq sub) c_root twig.subs
