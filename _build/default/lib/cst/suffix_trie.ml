module Doc = Xtwig_xml.Doc

let anchor = "^"

type node = {
  label : string;
  depth : int;
  mutable count : int;
  children : (string, node) Hashtbl.t;
  parent : node option;
  mutable lost_children : bool; (* some child subtree was pruned *)
}

type t = { root : node; mutable nodes : int }

let new_node ?parent label depth =
  { label; depth; count = 0; children = Hashtbl.create 4; parent; lost_children = false }

let child_of t parent label =
  match Hashtbl.find_opt parent.children label with
  | Some n -> n
  | None ->
      let n = new_node ~parent label (parent.depth + 1) in
      Hashtbl.add parent.children label n;
      t.nodes <- t.nodes + 1;
      n

let build doc =
  let t = { root = new_node "" 0; nodes = 0 } in
  Doc.iter doc (fun e ->
      (* walk the reversed root path: tag(e), tag(parent(e)), ..., ^ *)
      let rec up elem trie_node =
        let trie_node = child_of t trie_node (Doc.tag_name doc elem) in
        trie_node.count <- trie_node.count + 1;
        match Doc.parent doc elem with
        | Some p -> up p trie_node
        | None ->
            let fin = child_of t trie_node anchor in
            fin.count <- fin.count + 1
      in
      up e t.root);
  t

let node_count t = t.nodes
let size_bytes t = 12 * t.nodes

let all_leaves t =
  let acc = ref [] in
  let rec go n =
    if Hashtbl.length n.children = 0 then acc := n :: !acc
    else Hashtbl.iter (fun _ c -> go c) n.children
  in
  Hashtbl.iter (fun _ c -> go c) t.root.children;
  !acc

let remove t n =
  match n.parent with
  | None -> ()
  | Some p ->
      Hashtbl.remove p.children n.label;
      p.lost_children <- true;
      t.nodes <- t.nodes - 1

let prune t ~budget_bytes =
  let target = Stdlib.max 1 (budget_bytes / 12) in
  while t.nodes > target do
    let removable =
      List.filter (fun n -> n.depth > 1) (all_leaves t)
    in
    match removable with
    | [] -> (* only depth-1 label nodes remain *) raise Exit
    | _ ->
        let sorted =
          List.sort
            (fun a b ->
              match compare a.count b.count with
              | 0 -> compare b.depth a.depth
              | c -> c)
            removable
        in
        let excess = t.nodes - target in
        let wave = Stdlib.max 1 (Stdlib.min excess (List.length sorted / 2 + 1)) in
        List.iteri (fun i n -> if i < wave then remove t n) sorted
  done

let prune t ~budget_bytes = try prune t ~budget_bytes with Exit -> ()

(* Find the trie node for the reversed sequence; the input sequence is
   in path order (l1 ... lm), so walk it reversed. *)
let find t seq =
  let rec go node = function
    | [] -> Some node
    | l :: rest -> (
        match Hashtbl.find_opt node.children l with
        | Some c -> go c rest
        | None -> None)
  in
  go t.root (List.rev seq)

let lookup t seq =
  match find t seq with Some n when n.depth > 0 -> Some n.count | _ -> None

let existed t seq =
  let rec go node = function
    | [] -> true
    | l :: rest -> (
        match Hashtbl.find_opt node.children l with
        | Some c -> go c rest
        | None -> node.lost_children)
  in
  go t.root (List.rev seq)
