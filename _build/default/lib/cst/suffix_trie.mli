(** Suffix tries over root-to-element label paths.

    The substrate of the Correlated Suffix Tree baseline (Chen et al.,
    ICDE 2001): a trie over the {e reversed} label paths of every
    document element, so that the node reached by the reversed
    sequence [\[lm; ...; l1\]] counts the elements whose incoming path
    ends with [l1/…/lm] — i.e. the exact result cardinality of
    [//l1/…/lm]. A virtual anchor label ["^"] terminates every path,
    which makes absolute lookups ([/l1/…/lm] = sequence anchored with
    ["^"]) exact as well.

    Pruning removes lowest-count deep nodes until a byte budget is
    met; {!Cst} compensates for pruned lookups with maximal-overlap
    estimation. *)

type t

val build : Xtwig_xml.Doc.t -> t
(** Unpruned trie of every element's full reversed root path. *)

val prune : t -> budget_bytes:int -> unit
(** Greedily removes the deepest, lowest-count nodes (depth-1 label
    nodes are always kept) until {!size_bytes} fits the budget. *)

val lookup : t -> string list -> int option
(** [lookup t \[l1; ...; lm\]] is the stored count for paths ending in
    [l1/…/lm], or [None] if the node was pruned or never existed.
    Prepend ["^"] to anchor at the document root. *)

val existed : t -> string list -> bool
(** Whether the unpruned trie contained this sequence — distinguishes
    "pruned" (estimate it) from "impossible" (count 0). *)

val node_count : t -> int
val size_bytes : t -> int
(** 12 bytes per retained trie node (label, count, parent link). *)

val anchor : string
(** The virtual root label ["^"]. *)
