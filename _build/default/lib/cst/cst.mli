(** The Correlated Suffix Tree baseline (Chen et al., ICDE 2001), in
    the configuration the paper compares against: element values are
    ignored and the trie summarizes path structure only; twig
    selectivities use maximal-overlap estimation (the P-MOSH variant's
    maximal-overlap component, with independence across siblings in
    place of set-hashing correlation — see DESIGN.md).

    Pruning is greedy on node frequency, which — unlike XBUILD — never
    consults the estimation assumptions; this is the structural reason
    CSTs lose accuracy on skewed data (Section 6.2). *)

type t

val build : ?budget_bytes:int -> Xtwig_xml.Doc.t -> t
(** Builds the full suffix trie and prunes it to [budget_bytes]
    (default: unpruned). *)

val size_bytes : t -> int

val path_count : t -> anchored:bool -> string list -> float
(** Maximal-overlap estimate of the number of elements reached by
    [l1/…/lm] ([anchored] = absolute path from the document root).
    Exact when the trie retains the sequence; pruned sequences are
    estimated by the Markov overlap rule
    [c(l1..ln) = c(l1..ln-1) * c(l2..ln) / c(l2..ln-1)]. *)

val estimate : t -> Xtwig_path.Path_types.twig -> float
(** Twig selectivity: the root path count times, per twig child, the
    expected number of child matches per parent binding (a ratio of
    path counts), independently across siblings. Branching predicates
    contribute capped existence fractions; value predicates are
    ignored (CSTs do not support range predicates). Interior
    descendant steps are approximated as child steps. *)
