type t =
  | Null
  | Int of int
  | Float of float
  | Text of string

let is_null = function Null -> true | Int _ | Float _ | Text _ -> false

let as_float = function
  | Null -> None
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Text s -> float_of_string_opt s

let to_string = function
  | Null -> ""
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Text s -> s

let of_string s =
  if s = "" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> Text s)

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Text x, Text y -> String.equal x y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | (Null | Int _ | Float _ | Text _), _ -> false

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Text x, Text y -> String.compare x y
  | Text _, _ -> 1
  | _, Text _ -> -1
  | x, y -> (
      match (as_float x, as_float y) with
      | Some fx, Some fy -> Float.compare fx fy
      | _ -> 0)

let pp ppf v =
  match v with
  | Null -> Format.pp_print_string ppf "null"
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Text s -> Format.fprintf ppf "%S" s
