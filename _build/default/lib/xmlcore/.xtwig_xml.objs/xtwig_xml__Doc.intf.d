lib/xmlcore/doc.mli: Format Value
