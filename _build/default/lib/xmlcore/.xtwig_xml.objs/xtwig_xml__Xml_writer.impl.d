lib/xmlcore/xml_writer.ml: Array Buffer Doc Fun Printf String Value
