lib/xmlcore/xml_parser.ml: Buffer Char Doc Fun Printf String Value
