lib/xmlcore/value.ml: Float Format Printf String
