lib/xmlcore/doc.ml: Array Format Hashtbl List Stdlib Value
