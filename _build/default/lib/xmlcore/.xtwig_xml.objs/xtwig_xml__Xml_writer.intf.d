lib/xmlcore/xml_writer.mli: Buffer Doc
