lib/xmlcore/xml_parser.mli: Doc
