lib/xmlcore/value.mli: Format
