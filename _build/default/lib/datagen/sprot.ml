module B = Xtwig_xml.Doc.Builder
module Prng = Xtwig_util.Prng
open Gen_common

let default_element_count = 70_000

let dbs = [| "EMBL"; "PDB"; "PROSITE"; "PFAM"; "INTERPRO" |]
let feature_types = [| "DOMAIN"; "CHAIN"; "BINDING"; "HELIX"; "STRAND"; "SITE" |]
let organisms =
  [| "Homo sapiens"; "Mus musculus"; "E. coli"; "S. cerevisiae"; "D. melanogaster" |]

let generate ?(seed = 23) ?(scale = 1.0) () =
  let prng = Prng.create seed in
  let n_entries = int_of_float (2370.0 *. scale) in
  let b = B.create ~hint:(default_element_count + 1024) () in
  let root = B.root b "sprot" in
  for i = 0 to n_entries - 1 do
    let e = B.child b root "entry" in
    text b e "ac" (Printf.sprintf "P%05d" i);
    text b e "id" (Printf.sprintf "PROT%05d_SP" i);
    int_leaf b e "mod_date" (Prng.int_range prng 1990 2003);
    text b e "descr" (words prng (Prng.int_range prng 3 8));
    let org = B.child b e "organism" in
    text b org "species" (Prng.pick prng organisms);
    if Prng.chance prng 0.4 then text b org "strain" (words prng 1);
    repeat prng ~min:1 ~max:4 (fun _ ->
        let r = B.child b e "db_ref" in
        text b r "db" (Prng.pick prng dbs);
        text b r "key" (Printf.sprintf "X%06d" (Prng.int prng 1_000_000)));
    repeat prng ~min:1 ~max:4 (fun _ ->
        let f = B.child b e "feature" in
        text b f "type" (Prng.pick prng feature_types);
        let from_pos = Prng.int_range prng 1 800 in
        int_leaf b f "from" from_pos;
        int_leaf b f "to" (from_pos + Prng.int_range prng 5 120);
        if Prng.chance prng 0.3 then text b f "note" (words prng 3));
    repeat prng ~min:1 ~max:5 (fun _ -> text b e "keyword" (words prng 1));
    int_leaf b e "seq_length" (Prng.int_range prng 80 2000)
  done;
  B.finish b
