(** IMDB-like synthetic movie catalog (see DESIGN.md §4).

    The real IMDB dataset used by the paper is not redistributable, so
    this generator reproduces its estimation-relevant property
    instead: heavily {e correlated, skewed} structure. The movie genre
    drives Zipf-skewed actor/producer/keyword fanouts (the
    introduction's motivating example: action movies carry many more
    actors and producers than documentaries), release years, rating
    distributions and the {e presence} of optional sub-elements
    (box-office figures, awards, episodes). A label-split synopsis
    mixes all genres in one [movie] node, so coarse twig estimates err
    badly and XBUILD's refinements have real correlations to
    capture — matching the IMDB curves of Figure 9. *)

type genre = Action | Drama | Comedy | Documentary | Thriller

val generate : ?seed:int -> ?scale:float -> unit -> Xtwig_xml.Doc.t
(** [scale = 1.0] (default) yields roughly 103K elements. *)

val default_element_count : int
