module B = Xtwig_xml.Doc.Builder
module Value = Xtwig_xml.Value
module Prng = Xtwig_util.Prng

let text b parent tag s = ignore (B.child b parent ~value:(Value.Text s) tag)
let int_leaf b parent tag i = ignore (B.child b parent ~value:(Value.Int i) tag)
let leaf b parent tag = ignore (B.child b parent tag)

let dictionary =
  [|
    "auction"; "market"; "vintage"; "classic"; "rare"; "signed"; "limited";
    "original"; "pristine"; "antique"; "modern"; "design"; "crafted"; "wooden";
    "silver"; "golden"; "condition"; "shipping"; "offer"; "reserve"; "catalog";
    "archive"; "protein"; "sequence"; "domain"; "binding"; "membrane"; "story";
    "drama"; "scene"; "camera"; "director"; "festival"; "award"; "release";
  |]

let words prng n =
  let buf = Buffer.create (n * 8) in
  for i = 1 to n do
    if i > 1 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Prng.pick prng dictionary)
  done;
  Buffer.contents buf

let first_names =
  [| "Ada"; "Alan"; "Grace"; "Edsger"; "Barbara"; "John"; "Donald"; "Leslie";
     "Tony"; "Robin"; "Niklaus"; "Frances"; "Kurt"; "Yuri"; "Rosa"; "Maryam" |]

let last_names =
  [| "Lovelace"; "Turing"; "Hopper"; "Dijkstra"; "Liskov"; "McCarthy";
     "Knuth"; "Lamport"; "Hoare"; "Milner"; "Wirth"; "Allen"; "Goedel";
     "Matiyasevich"; "Peter"; "Mirzakhani" |]

let name prng =
  Printf.sprintf "%s %s" (Prng.pick prng first_names) (Prng.pick prng last_names)

let repeat prng ~min ~max f =
  let n = Prng.int_range prng min max in
  for i = 0 to n - 1 do
    f i
  done
