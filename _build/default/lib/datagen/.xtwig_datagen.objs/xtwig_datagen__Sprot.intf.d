lib/datagen/sprot.mli: Xtwig_xml
