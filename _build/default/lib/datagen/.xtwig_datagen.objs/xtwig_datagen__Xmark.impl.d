lib/datagen/xmark.ml: Array Gen_common Printf Stdlib Xtwig_util Xtwig_xml
