lib/datagen/gen_common.ml: Buffer Printf Xtwig_util Xtwig_xml
