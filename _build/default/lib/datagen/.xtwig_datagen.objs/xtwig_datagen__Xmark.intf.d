lib/datagen/xmark.mli: Xtwig_xml
