lib/datagen/gen_common.mli: Xtwig_util Xtwig_xml
