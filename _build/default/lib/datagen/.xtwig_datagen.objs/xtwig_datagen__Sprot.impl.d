lib/datagen/sprot.ml: Gen_common Printf Xtwig_util Xtwig_xml
