lib/datagen/imdb.mli: Xtwig_xml
