lib/datagen/imdb.ml: Gen_common Stdlib Xtwig_util Xtwig_xml
