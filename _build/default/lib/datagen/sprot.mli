(** SwissProt-like synthetic protein annotation document (see
    DESIGN.md §4).

    Mostly-regular entries — accession, identifiers, organism,
    cross-references, sequence features, keywords — with moderate
    optionality and mild fanout skew. In the paper, SwissProt sits
    between XMark (fully regular) and IMDB (highly correlated):
    CSTs and XSKETCHes are roughly tied on it at 50KB (Figure 9(c)). *)

val generate : ?seed:int -> ?scale:float -> unit -> Xtwig_xml.Doc.t
(** [scale = 1.0] (default) yields roughly 70K elements, matching
    Table 1. *)

val default_element_count : int
