(** Shared helpers for the synthetic dataset generators. *)

module B := Xtwig_xml.Doc.Builder

val text : B.t -> Xtwig_xml.Doc.node -> string -> string -> unit
(** [text b parent tag s] appends a leaf child with a text value. *)

val int_leaf : B.t -> Xtwig_xml.Doc.node -> string -> int -> unit

val leaf : B.t -> Xtwig_xml.Doc.node -> string -> unit
(** Value-less leaf. *)

val words : Xtwig_util.Prng.t -> int -> string
(** Pseudo-sentence of [n] dictionary words — fills description-like
    leaves so serialized text sizes resemble real documents. *)

val name : Xtwig_util.Prng.t -> string
(** A two-token personal name. *)

val repeat : Xtwig_util.Prng.t -> min:int -> max:int -> (int -> unit) -> unit
(** Calls the function a uniform number of times. *)
