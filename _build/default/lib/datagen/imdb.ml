module B = Xtwig_xml.Doc.Builder
module Prng = Xtwig_util.Prng
module Zipf = Xtwig_util.Zipf
open Gen_common

type genre = Action | Drama | Comedy | Documentary | Thriller

let default_element_count = 103_000

let genre_name = function
  | Action -> "action"
  | Drama -> "drama"
  | Comedy -> "comedy"
  | Documentary -> "documentary"
  | Thriller -> "thriller"

let pick_genre prng =
  let r = Prng.float prng 1.0 in
  if r < 0.25 then Action
  else if r < 0.55 then Drama
  else if r < 0.75 then Comedy
  else if r < 0.90 then Documentary
  else Thriller

(* Genre-conditioned fanout distributions: the source of the twig-join
   skew the paper's IMDB experiments exhibit. *)
let actor_zipf = Zipf.create ~n:30 ~theta:0.8
let kw_zipf = Zipf.create ~n:12 ~theta:1.0

let actors_of prng = function
  | Action -> 6 + Zipf.sample actor_zipf prng (* 7 .. 36, skewed low *)
  | Thriller -> 4 + (Zipf.sample actor_zipf prng / 2)
  | Drama -> 2 + Prng.int_range prng 1 6
  | Comedy -> 2 + Prng.int_range prng 1 4
  | Documentary -> Prng.int_range prng 0 1

let producers_of prng genre actors =
  (* correlated with the actor count on top of the genre *)
  let base = Stdlib.max 1 (actors / 3) in
  match genre with
  | Action | Thriller -> base + Prng.int_range prng 0 2
  | Drama | Comedy -> Stdlib.max 1 (base + Prng.int_range prng (-1) 1)
  | Documentary -> 1

let keywords_of prng = function
  | Action | Thriller -> 1 + Prng.int_range prng 0 2
  | Drama -> 1 + Prng.int_range prng 0 4
  | Comedy -> 1 + Prng.int_range prng 0 3
  | Documentary -> 5 + Zipf.sample kw_zipf prng

let year_of prng = function
  | Action -> Prng.int_range prng 1985 2003
  | Thriller -> Prng.int_range prng 1975 2003
  | Drama -> Prng.int_range prng 1950 2003
  | Comedy -> Prng.int_range prng 1960 2003
  | Documentary -> Prng.int_range prng 1940 2003

let rating_of prng = function
  | Documentary -> 65 + Prng.int_range prng 0 30 (* of 100 *)
  | Drama -> 50 + Prng.int_range prng 0 45
  | Action -> 30 + Prng.int_range prng 0 50
  | Comedy -> 35 + Prng.int_range prng 0 50
  | Thriller -> 40 + Prng.int_range prng 0 45

let generate ?(seed = 11) ?(scale = 1.0) () =
  let prng = Prng.create seed in
  let n_movies = int_of_float (2990.0 *. scale) in
  let b = B.create ~hint:(default_element_count + 1024) () in
  let root = B.root b "imdb" in
  for i = 0 to n_movies - 1 do
    let m = B.child b root "movie" in
    let genre = pick_genre prng in
    let year = year_of prng genre in
    let rating = rating_of prng genre in
    text b m "title" (words prng (Prng.int_range prng 1 4));
    int_leaf b m "year" year;
    text b m "genre" (genre_name genre);
    let actors = actors_of prng genre in
    for _ = 1 to actors do
      let a = B.child b m "actor" in
      text b a "name" (name prng)
    done;
    for _ = 1 to producers_of prng genre actors do
      let p = B.child b m "producer" in
      text b p "name" (name prng)
    done;
    let d = B.child b m "director" in
    text b d "name" (name prng);
    for _ = 1 to keywords_of prng genre do
      text b m "keyword" (words prng 1)
    done;
    int_leaf b m "rating" rating;
    (* review count correlated with the rating *)
    let reviews = Stdlib.max 0 ((rating - 40) / 18) + Prng.int_range prng 0 1 in
    for _ = 1 to reviews do
      let r = B.child b m "review" in
      text b r "reviewer" (name prng);
      int_leaf b r "score" (Stdlib.max 0 (Stdlib.min 100 (rating + Prng.int_range prng (-15) 15)))
    done;
    (* optional structure, genre- and year-correlated: the presence of
       these sub-elements is a strong predictor of the fanouts above,
       which is what breaks the independence of branching predicates
       and structural-join counts on a coarse summary *)
    (match genre with
    | Action | Comedy ->
        if year >= 1980 && Prng.chance prng 0.85 then
          int_leaf b m "box_office" ((1 + Prng.int prng 400) * 1_000_000)
    | Drama | Documentary ->
        if Prng.chance prng 0.5 then begin
          let aw = B.child b m "award" in
          text b aw "category" (words prng 1);
          int_leaf b aw "year" (Stdlib.min 2003 (year + Prng.int_range prng 0 2))
        end
    | Thriller -> ());
    if year >= 1995 && Prng.chance prng 0.6 then leaf b m "dvd";
    ignore i
  done;
  B.finish b
