(** XMark-like synthetic auction document (see DESIGN.md §4).

    Reproduces the auction-site schema of the XMark benchmark —
    regions with items, people, open and closed auctions, categories —
    with {e uniform} fanout and value distributions. The paper relies
    on exactly this property ("generated from uniform distributions
    and thus more regular in structure"), which keeps twig estimation
    error low even for coarse synopses. *)

val generate : ?seed:int -> ?scale:float -> unit -> Xtwig_xml.Doc.t
(** [scale = 1.0] (default) yields roughly 103K elements, matching
    Table 1. *)

val default_element_count : int
(** Approximate element count at scale 1. *)
