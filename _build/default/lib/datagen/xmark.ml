module B = Xtwig_xml.Doc.Builder
module Prng = Xtwig_util.Prng
open Gen_common

let default_element_count = 103_000

let regions_names =
  [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let generate ?(seed = 7) ?(scale = 1.0) () =
  let prng = Prng.create seed in
  let n_items = int_of_float (2250.0 *. scale) in
  let n_persons = int_of_float (2850.0 *. scale) in
  let n_open = int_of_float (1120.0 *. scale) in
  let n_closed = int_of_float (1360.0 *. scale) in
  let n_categories = int_of_float (450.0 *. scale) in
  let b = B.create ~hint:(default_element_count + 1024) () in
  let site = B.root b "site" in

  (* regions *)
  let regions = B.child b site "regions" in
  let region_nodes = Array.map (fun r -> B.child b regions r) regions_names in
  for i = 0 to n_items - 1 do
    let region = Prng.pick prng region_nodes in
    let item = B.child b region "item" in
    text b item "location" (Prng.pick prng regions_names);
    int_leaf b item "quantity" (Prng.int_range prng 1 10);
    text b item "name" (words prng 2);
    text b item "payment" (Prng.pick_list prng [ "cash"; "check"; "wire" ]);
    text b item "description" (words prng (Prng.int_range prng 4 12));
    leaf b item "shipping";
    repeat prng ~min:0 ~max:2 (fun _ -> leaf b item "photo");
    repeat prng ~min:1 ~max:3 (fun _ ->
        int_leaf b item "incategory" (Prng.int prng (Stdlib.max 1 n_categories)));
    let mailbox = B.child b item "mailbox" in
    repeat prng ~min:0 ~max:2 (fun _ ->
        let mail = B.child b mailbox "mail" in
        text b mail "from" (name prng);
        text b mail "to" (name prng);
        int_leaf b mail "date" (Prng.int_range prng 1998 2003);
        text b mail "text" (words prng (Prng.int_range prng 3 8)));
    ignore i
  done;

  (* categories *)
  let categories = B.child b site "categories" in
  for i = 0 to n_categories - 1 do
    let c = B.child b categories "category" in
    text b c "name" (words prng 1);
    text b c "description" (words prng (Prng.int_range prng 2 6));
    ignore i
  done;

  (* people *)
  let people = B.child b site "people" in
  for i = 0 to n_persons - 1 do
    let p = B.child b people "person" in
    text b p "name" (name prng);
    text b p "emailaddress" (Printf.sprintf "user%d@example.net" i);
    if Prng.chance prng 0.5 then
      text b p "phone" (Printf.sprintf "+1-555-%04d" (Prng.int prng 10000));
    if Prng.chance prng 0.7 then begin
      let a = B.child b p "address" in
      text b a "street" (words prng 2);
      text b a "city" (words prng 1);
      text b a "country" (Prng.pick prng regions_names);
      int_leaf b a "zipcode" (Prng.int_range prng 10000 99999)
    end;
    if Prng.chance prng 0.5 then
      text b p "creditcard" (Printf.sprintf "%04d %04d" (Prng.int prng 10000) (Prng.int prng 10000));
    let w = B.child b p "watches" in
    repeat prng ~min:0 ~max:4 (fun _ ->
        int_leaf b w "watch" (Prng.int prng (Stdlib.max 1 n_open)))
  done;

  (* open auctions *)
  let opens = B.child b site "open_auctions" in
  for _ = 1 to n_open do
    let a = B.child b opens "open_auction" in
    int_leaf b a "initial" (Prng.int_range prng 1 500);
    if Prng.chance prng 0.5 then int_leaf b a "reserve" (Prng.int_range prng 100 900);
    repeat prng ~min:0 ~max:5 (fun _ ->
        let bidder = B.child b a "bidder" in
        int_leaf b bidder "date" (Prng.int_range prng 1998 2003);
        int_leaf b bidder "time" (Prng.int_range prng 0 86399);
        int_leaf b bidder "increase" (Prng.int_range prng 1 50));
    int_leaf b a "current" (Prng.int_range prng 1 1500);
    int_leaf b a "itemref" (Prng.int prng (Stdlib.max 1 n_items));
    int_leaf b a "seller" (Prng.int prng (Stdlib.max 1 n_persons));
    int_leaf b a "quantity" (Prng.int_range prng 1 10);
    let itv = B.child b a "interval" in
    int_leaf b itv "start" (Prng.int_range prng 1998 2000);
    int_leaf b itv "end" (Prng.int_range prng 2001 2003);
    let ann = B.child b a "annotation" in
    text b ann "author" (name prng);
    text b ann "description" (words prng (Prng.int_range prng 3 10))
  done;

  (* closed auctions *)
  let closed = B.child b site "closed_auctions" in
  for _ = 1 to n_closed do
    let a = B.child b closed "closed_auction" in
    int_leaf b a "seller" (Prng.int prng (Stdlib.max 1 n_persons));
    int_leaf b a "buyer" (Prng.int prng (Stdlib.max 1 n_persons));
    int_leaf b a "itemref" (Prng.int prng (Stdlib.max 1 n_items));
    int_leaf b a "price" (Prng.int_range prng 1 2000);
    int_leaf b a "date" (Prng.int_range prng 1998 2003);
    int_leaf b a "quantity" (Prng.int_range prng 1 10);
    let ann = B.child b a "annotation" in
    text b ann "author" (name prng);
    text b ann "description" (words prng (Prng.int_range prng 3 10))
  done;

  B.finish b
