lib/evaluator/eval_path.mli: Xtwig_path Xtwig_xml
