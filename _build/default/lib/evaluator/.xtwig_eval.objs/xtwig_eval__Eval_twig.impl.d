lib/evaluator/eval_twig.ml: Array Eval_path Hashtbl List Xtwig_path Xtwig_xml
