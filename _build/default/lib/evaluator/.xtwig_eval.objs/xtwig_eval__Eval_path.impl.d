lib/evaluator/eval_path.ml: Array Float Hashtbl List String Xtwig_path Xtwig_xml
