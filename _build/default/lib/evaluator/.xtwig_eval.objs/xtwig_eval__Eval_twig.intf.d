lib/evaluator/eval_twig.mli: Xtwig_path Xtwig_xml
