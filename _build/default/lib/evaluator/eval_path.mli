(** Exact evaluation of single path expressions over a document.

    These are the reference semantics: every estimate in the synopsis
    layer is judged against the numbers produced here. *)

val value_pred_holds : Xtwig_path.Path_types.value_pred -> Xtwig_xml.Value.t -> bool
(** Truth of a value predicate on a concrete leaf value. Numeric
    comparisons require a numeric value; [Cmp] against text compares
    strings; a [Null] value satisfies nothing. *)

val step_matches :
  Xtwig_xml.Doc.t -> Xtwig_path.Path_types.step -> Xtwig_xml.Doc.node -> bool
(** Label, value-predicate and branching-predicate checks for a node
    already reached by the step's axis. *)

val eval :
  Xtwig_xml.Doc.t ->
  from:Xtwig_xml.Doc.node option ->
  Xtwig_path.Path_types.path ->
  Xtwig_xml.Doc.node list
(** [eval doc ~from p] is the result set of [p] evaluated from [from]
    ([None] = the virtual root above the document root, for absolute
    paths). Results are distinct, in document order. *)

val count : Xtwig_xml.Doc.t -> from:Xtwig_xml.Doc.node option -> Xtwig_path.Path_types.path -> int
(** [List.length (eval ...)] without building the list. *)

val exists : Xtwig_xml.Doc.t -> from:Xtwig_xml.Doc.node -> Xtwig_path.Path_types.path -> bool
(** Branching-predicate semantics: at least one match. *)
