(** Exact twig-query evaluation: the number of binding tuples.

    The selectivity [s(T_Q)] of a twig query is the number of binding
    tuples it generates (Section 2 of the paper): each tuple assigns
    one document element to every twig node such that every
    parent/child pair of twig nodes is connected by the child's path
    expression. *)

val selectivity : Xtwig_xml.Doc.t -> Xtwig_path.Path_types.twig -> int
(** Exact binding-tuple count. Memoized internally; linear-ish in
    (matched elements x twig nodes). *)

val bindings :
  ?limit:int -> Xtwig_xml.Doc.t -> Xtwig_path.Path_types.twig ->
  Xtwig_xml.Doc.node array list
(** Materializes binding tuples (pre-order twig-node order), up to
    [limit] (default 1000) — used by tests and the examples, not by
    the benchmarks. *)

val node_matches : Xtwig_xml.Doc.t -> Xtwig_path.Path_types.twig -> int
(** Number of elements matched by the root twig node alone (its
    per-node result cardinality). *)
