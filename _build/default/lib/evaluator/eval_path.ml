open Xtwig_path.Path_types
module Doc = Xtwig_xml.Doc
module Value = Xtwig_xml.Value

let value_pred_holds pred (v : Value.t) =
  match pred with
  | Range (lo, hi) -> (
      match Value.as_float v with
      | Some f -> lo <= f && f <= hi
      | None -> false)
  | Cmp (op, bound) -> (
      let test c =
        match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Eq -> c = 0
        | Ne -> c <> 0
        | Ge -> c >= 0
        | Gt -> c > 0
      in
      match (Value.as_float v, Value.as_float bound) with
      | Some a, Some b -> test (Float.compare a b)
      | _ -> (
          match (v, bound) with
          | Text a, Text b -> test (String.compare a b)
          | _ -> false))

(* Nodes reached from [from] by one application of the axis. *)
let axis_candidates doc from axis =
  match (from, axis) with
  | None, Child -> [ Doc.root doc ]
  | None, Descendant ->
      let acc = ref [] in
      Doc.iter doc (fun n -> acc := n :: !acc);
      List.rev !acc
  | Some n, Child -> Array.to_list (Doc.children doc n)
  | Some n, Descendant ->
      let acc = ref [] in
      let rec go n =
        Array.iter
          (fun k ->
            acc := k :: !acc;
            go k)
          (Doc.children doc n)
      in
      go n;
      List.rev !acc

let rec step_matches doc s n =
  String.equal (Doc.tag_name doc n) s.label
  && (match s.vpred with
     | None -> true
     | Some p -> value_pred_holds p (Doc.value doc n))
  && List.for_all (fun b -> exists doc ~from:n b) s.branches

and eval doc ~from p =
  match p with
  | [] -> ( match from with None -> [] | Some n -> [ n ])
  | s :: rest ->
      let here =
        List.filter (step_matches doc s) (axis_candidates doc from s.axis)
      in
      if rest = [] then here
      else
        (* child-axis steps from distinct nodes yield distinct nodes; a
           descendant step may revisit, so dedupe while keeping order *)
        let seen = Hashtbl.create 16 in
        List.concat_map
          (fun n ->
            List.filter
              (fun m ->
                if Hashtbl.mem seen m then false
                else begin
                  Hashtbl.add seen m ();
                  true
                end)
              (eval doc ~from:(Some n) rest))
          here

and exists doc ~from p = eval doc ~from:(Some from) p <> []

let count doc ~from p = List.length (eval doc ~from p)
