type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = bits64 g in
  { state = mix s }

let int g n =
  assert (n > 0);
  (* mask to 62 bits so the value stays non-negative in a native int *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 g) 1) land max_int in
  x mod n

let int_range g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let float g x =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  (* 53 significant bits, uniform in [0,1) *)
  x *. (u /. 9007199254740992.0)

let bool g = Int64.logand (bits64 g) 1L = 1L

let chance g p = float g 1.0 < p

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let pick_list g l =
  let n = List.length l in
  assert (n > 0);
  List.nth l (int g n)

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_weighted g w =
  let total = Array.fold_left ( +. ) 0.0 w in
  assert (total > 0.0);
  let target = float g total in
  let n = Array.length w in
  let rec loop i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if target < acc then i else loop (i + 1) acc
  in
  loop 0 0.0

let geometric g p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = Stdlib.max 1e-300 (float g 1.0) in
    let x = Stdlib.log u /. Stdlib.log (1.0 -. p) in
    int_of_float (Stdlib.floor x)
