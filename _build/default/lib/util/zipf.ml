type t = { n : int; theta : float; cumulative : float array; mean : float }

let create ~n ~theta =
  assert (n >= 1);
  assert (theta >= 0.0);
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 1 to n do
    acc := !acc +. (1.0 /. (float_of_int k ** theta));
    cumulative.(k - 1) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cumulative.(k) <- cumulative.(k) /. total
  done;
  let mean = ref 0.0 in
  let prev = ref 0.0 in
  for k = 0 to n - 1 do
    mean := !mean +. (float_of_int (k + 1) *. (cumulative.(k) -. !prev));
    prev := cumulative.(k)
  done;
  { n; theta; cumulative; mean = !mean }

let sample t g =
  let u = Prng.float g 1.0 in
  (* binary search for the first cumulative weight >= u *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let support t = t.n
let theta t = t.theta
let mean t = t.mean
