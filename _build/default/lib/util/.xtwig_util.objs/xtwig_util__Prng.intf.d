lib/util/prng.mli:
