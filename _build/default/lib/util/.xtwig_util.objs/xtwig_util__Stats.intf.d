lib/util/stats.mli:
