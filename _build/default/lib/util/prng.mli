(** Deterministic pseudo-random number generator.

    A small splittable PRNG (SplitMix64) used everywhere randomness is
    needed — dataset generation, workload sampling, XBUILD candidate
    sampling — so that every experiment in the repository is exactly
    reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds produce equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_range : t -> int -> int -> int
(** [int_range g lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_weighted : t -> float array -> int
(** [sample_weighted g w] returns index [i] with probability
    [w.(i) / sum w]. Requires some strictly positive weight. *)

val geometric : t -> float -> int
(** [geometric g p] counts Bernoulli(p) failures before the first
    success; mean [(1-p)/p]. Requires [0 < p <= 1]. *)
