(** Small numeric helpers shared by the estimation-error machinery and
    the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val mean_list : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays of length < 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]: nearest-rank percentile of
    the (copied, sorted) data. Raises [Invalid_argument] on empty
    input. *)

val median : float array -> float
(** 50th percentile. *)

val minimum : float array -> float
val maximum : float array -> float

val histogram_text : ?width:int -> float array -> string
(** A one-line sparkline-ish rendering used by the CLI's [inspect]
    command. *)
