(** Zipfian samplers.

    Skewed fanout distributions drive the correlated structure of the
    simulated IMDB dataset: the paper's estimation problem is only hard
    when join cardinalities are skewed, so the generators need heavy
    tails that a uniform sampler cannot provide. *)

type t
(** A finite Zipf distribution over ranks [1..n] with parameter
    [theta]: P(rank = k) proportional to [1 / k^theta]. *)

val create : n:int -> theta:float -> t
(** Precomputes the cumulative mass. Requires [n >= 1], [theta >= 0].
    [theta = 0] degenerates to uniform. *)

val sample : t -> Prng.t -> int
(** Draws a rank in [1..n] (1 is most probable). *)

val support : t -> int
(** The number of ranks [n]. *)

val theta : t -> float
(** The skew parameter. *)

val mean : t -> float
(** Exact mean rank of the distribution. *)
