(* The xtwig command-line tool: generate datasets, inspect documents,
   build Twig XSKETCH synopses and estimate twig queries.

     xtwig generate --dataset imdb --scale 0.1 -o imdb.xml
     xtwig inspect imdb.xml
     xtwig estimate imdb.xml "for t0 in //movie, t1 in t0/actor" --budget 8192
     xtwig workload imdb.xml --queries 20 --kind pv
     xtwig compare imdb.xml --budget 8192 --queries 100 *)

open Cmdliner
module Doc = Xtwig_xml.Doc
module Sketch = Xtwig_sketch.Sketch
module Est = Xtwig_sketch.Estimator
module Wgen = Xtwig_workload.Wgen
module Prng = Xtwig_util.Prng

let load path =
  try Ok (Xtwig_xml.Xml_parser.parse_string (In_channel.with_open_bin path In_channel.input_all))
  with
  | Xtwig_xml.Xml_parser.Parse_error msg -> Error (`Msg ("parse error: " ^ msg))
  | Sys_error msg -> Error (`Msg msg)

let build_sketch ?(quiet = false) doc ~budget ~seed =
  let truth_tbl = Hashtbl.create 256 in
  let truth q =
    let k = Xtwig_path.Path_printer.twig_to_string q in
    match Hashtbl.find_opt truth_tbl k with
    | Some v -> v
    | None ->
        let v = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
        Hashtbl.add truth_tbl k v;
        v
  in
  let workload prng ~focus =
    Wgen.generate ~focus { Wgen.paper_p with n_queries = 10 } prng doc
  in
  Xtwig_sketch.Xbuild.build ~seed ~budget ~workload ~truth
    ~on_step:(fun _ info ->
      if not quiet then
        Printf.eprintf "step %3d: %-46s -> %d bytes\n%!" info.Xtwig_sketch.Xbuild.step
          info.Xtwig_sketch.Xbuild.description info.Xtwig_sketch.Xbuild.size)
    doc

(* ---------------- generate ---------------- *)

let generate_cmd =
  let dataset =
    Arg.(
      required
      & opt (some (enum [ ("xmark", `Xmark); ("imdb", `Imdb); ("sprot", `Sprot) ])) None
      & info [ "dataset"; "d" ] ~docv:"NAME" ~doc:"Dataset: xmark, imdb or sprot.")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc:"Size multiplier.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output XML file.")
  in
  let run dataset scale seed output =
    let doc =
      match dataset with
      | `Xmark -> Xtwig_datagen.Xmark.generate ~seed ~scale ()
      | `Imdb -> Xtwig_datagen.Imdb.generate ~seed ~scale ()
      | `Sprot -> Xtwig_datagen.Sprot.generate ~seed ~scale ()
    in
    Xtwig_xml.Xml_writer.to_file output doc;
    Printf.printf "wrote %s: %d elements\n" output (Doc.size doc);
    Ok ()
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic XML dataset.")
    Term.(term_result (const run $ dataset $ scale $ seed $ output))

(* ---------------- inspect ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"XML document.")

let inspect_cmd =
  let run file =
    match load file with
    | Error e -> Error e
    | Ok doc ->
        let syn = Xtwig_synopsis.Graph_synopsis.label_split doc in
        let coarse = Sketch.coarsest syn in
        Format.printf "%a@." Doc.pp_summary doc;
        Format.printf "text size: %.2f MB@."
          (float_of_int (Xtwig_xml.Xml_writer.text_size doc) /. 1_048_576.0);
        Format.printf "label-split synopsis: %d nodes, %d edges, coarsest sketch %d bytes@."
          (Xtwig_synopsis.Graph_synopsis.node_count syn)
          (Xtwig_synopsis.Graph_synopsis.edge_count syn)
          (Sketch.size_bytes coarse);
        Format.printf "@.%-20s %10s %8s@." "tag" "count" "depth";
        for t = 0 to Doc.tag_count doc - 1 do
          let nodes = Doc.nodes_with_tag doc t in
          if Array.length nodes > 0 then
            Format.printf "%-20s %10d %8d@." (Doc.tag_to_string doc t)
              (Array.length nodes)
              (Doc.depth doc nodes.(0))
        done;
        Ok ()
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Show document and synopsis statistics.")
    Term.(term_result (const run $ file_arg))

(* ---------------- build ---------------- *)

let budget_arg =
  Arg.(value & opt int 8192 & info [ "budget" ] ~docv:"BYTES" ~doc:"Synopsis budget.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let build_cmd =
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output .sketch file.")
  in
  let run file budget seed output =
    match load file with
    | Error e -> Error e
    | Ok doc ->
        let sketch = build_sketch ~quiet:true doc ~budget ~seed in
        Xtwig_sketch.Sketch_io.save sketch output;
        Printf.printf "wrote %s: %d bytes of synopsis for %d elements\n" output
          (Sketch.size_bytes sketch) (Doc.size doc);
        Ok ()
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Run XBUILD on a document and persist the synopsis configuration.")
    Term.(term_result (const run $ file_arg $ budget_arg $ seed_arg $ output))

(* ---------------- estimate ---------------- *)

let estimate_cmd =
  let query =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:"Twig query, e.g. 'for t0 in //movie, t1 in t0/actor'.")
  in
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"Also compute the exact selectivity.")
  in
  let sketch_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "sketch" ] ~docv:"FILE"
          ~doc:"Reuse a synopsis saved by $(b,xtwig build) instead of rebuilding.")
  in
  let run file query budget seed exact sketch_file =
    match load file with
    | Error e -> Error e
    | Ok doc -> (
        match Xtwig_path.Path_parser.twig_of_string query with
        | exception Xtwig_path.Path_parser.Parse_error msg ->
            Error (`Msg ("query: " ^ msg))
        | q -> (
            match
              match sketch_file with
              | Some path -> Xtwig_sketch.Sketch_io.load doc path
              | None -> build_sketch ~quiet:true doc ~budget ~seed
            with
            | exception Xtwig_sketch.Sketch_io.Format_error msg ->
                Error (`Msg ("sketch: " ^ msg))
            | sketch ->
                Format.printf "synopsis: %d bytes@." (Sketch.size_bytes sketch);
                Format.printf "estimate: %.2f@." (Est.estimate sketch q);
                if exact then
                  Format.printf "exact:    %d@."
                    (Xtwig_eval.Eval_twig.selectivity doc q);
                Ok ()))
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Estimate a twig query's selectivity over a (built or loaded) synopsis.")
    Term.(
      term_result
        (const run $ file_arg $ query $ budget_arg $ seed_arg $ exact $ sketch_file))

(* ---------------- workload ---------------- *)

let workload_cmd =
  let n =
    Arg.(value & opt int 20 & info [ "queries"; "n" ] ~docv:"N" ~doc:"Query count.")
  in
  let kind =
    Arg.(
      value
      & opt (enum [ ("p", `P); ("pv", `Pv); ("simple", `Simple) ]) `P
      & info [ "kind" ] ~docv:"KIND" ~doc:"Workload kind: p, pv or simple.")
  in
  let run file n kind seed =
    match load file with
    | Error e -> Error e
    | Ok doc ->
        let spec =
          match kind with
          | `P -> Wgen.paper_p
          | `Pv -> Wgen.paper_pv
          | `Simple -> Wgen.simple_paths
        in
        let qs = Wgen.generate { spec with Wgen.n_queries = n } (Prng.create seed) doc in
        List.iter
          (fun q ->
            Format.printf "%8d  %s@."
              (Xtwig_eval.Eval_twig.selectivity doc q)
              (Xtwig_path.Path_printer.twig_to_string q))
          qs;
        Ok ()
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Generate a positive twig workload with true selectivities.")
    Term.(term_result (const run $ file_arg $ n $ kind $ seed_arg))

(* ---------------- compare ---------------- *)

let compare_cmd =
  let n =
    Arg.(value & opt int 100 & info [ "queries"; "n" ] ~docv:"N" ~doc:"Query count.")
  in
  let run file budget n seed =
    match load file with
    | Error e -> Error e
    | Ok doc ->
        let qs =
          Wgen.generate { Wgen.paper_p with Wgen.n_queries = n } (Prng.create 99) doc
        in
        let truths =
          Array.of_list
            (List.map (fun q -> float_of_int (Xtwig_eval.Eval_twig.selectivity doc q)) qs)
        in
        let err name estimates =
          Format.printf "%-24s %.3f@." name
            (Xtwig_workload.Error_metric.average_error ~truths
               ~estimates:(Array.of_list estimates))
        in
        Format.printf "average absolute relative error on %d twig queries:@." n;
        let coarse = Sketch.default_of_doc doc in
        err "coarse xsketch" (List.map (fun q -> Est.estimate coarse q) qs);
        let sketch = build_sketch ~quiet:true doc ~budget ~seed in
        err
          (Printf.sprintf "xsketch (%d B)" (Sketch.size_bytes sketch))
          (List.map (fun q -> Est.estimate sketch q) qs);
        let cst = Xtwig_cst.Cst.build ~budget_bytes:budget doc in
        err
          (Printf.sprintf "cst (%d B)" (Xtwig_cst.Cst.size_bytes cst))
          (List.map (fun q -> Xtwig_cst.Cst.estimate cst q) qs);
        Ok ()
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare coarse/built XSKETCH and CST errors on a random workload.")
    Term.(term_result (const run $ file_arg $ budget_arg $ n $ seed_arg))

let () =
  let doc = "Twig XSKETCH selectivity estimation for XML twig queries" in
  let info = Cmd.info "xtwig" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; inspect_cmd; build_cmd; estimate_cmd; workload_cmd;
            compare_cmd;
          ]))
