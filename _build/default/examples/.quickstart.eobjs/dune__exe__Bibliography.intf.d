examples/bibliography.mli:
