examples/movie_optimizer.ml: Float Format List Option Printf Stdlib String Xtwig_datagen Xtwig_eval Xtwig_path Xtwig_sketch Xtwig_synopsis Xtwig_workload Xtwig_xml
