examples/auction_tuning.mli:
