examples/bibliography.ml: Array Format List Printf String Xtwig_eval Xtwig_fixtures Xtwig_hist Xtwig_path Xtwig_sketch Xtwig_synopsis Xtwig_xml
