examples/quickstart.ml: Array Format List Xtwig_eval Xtwig_path Xtwig_sketch Xtwig_synopsis Xtwig_util Xtwig_workload Xtwig_xml
