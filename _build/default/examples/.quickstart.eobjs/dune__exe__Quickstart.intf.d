examples/quickstart.mli:
