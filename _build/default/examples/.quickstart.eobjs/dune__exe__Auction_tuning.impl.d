examples/auction_tuning.ml: Array Format Hashtbl List Xtwig_cst Xtwig_datagen Xtwig_eval Xtwig_path Xtwig_sketch Xtwig_util Xtwig_workload Xtwig_xml
