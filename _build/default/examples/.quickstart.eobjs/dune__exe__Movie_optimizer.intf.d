examples/movie_optimizer.mli:
