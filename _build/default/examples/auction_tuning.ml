(* Space-budget tuning on the XMark-like auction site: how much
   synopsis memory does a target accuracy need, and how does the CST
   baseline spend the same bytes?

   Run with:  dune exec examples/auction_tuning.exe *)

module Sketch = Xtwig_sketch.Sketch
module Est = Xtwig_sketch.Estimator
module Wgen = Xtwig_workload.Wgen
module EM = Xtwig_workload.Error_metric
module Prng = Xtwig_util.Prng

let () =
  let doc = Xtwig_datagen.Xmark.generate ~scale:0.25 () in
  Format.printf "auction site: %d elements, %.2f MB of XML@."
    (Xtwig_xml.Doc.size doc)
    (float_of_int (Xtwig_xml.Xml_writer.text_size doc) /. 1_048_576.0);

  (* the workload a production deployment would care about *)
  let queries = Wgen.generate { Wgen.paper_p with n_queries = 150 } (Prng.create 3) doc in
  let truth_tbl = Hashtbl.create 256 in
  let truth q =
    let k = Xtwig_path.Path_printer.twig_to_string q in
    match Hashtbl.find_opt truth_tbl k with
    | Some v -> v
    | None ->
        let v = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
        Hashtbl.add truth_tbl k v;
        v
  in
  let truths = Array.of_list (List.map truth queries) in
  let error sk =
    EM.average_error ~truths
      ~estimates:(Array.of_list (List.map (fun q -> Est.estimate sk q) queries))
  in

  (* XBUILD to an ample budget, snapshotting along the way *)
  let snapshots = ref [] in
  let next = ref 1024 in
  let workload prng ~focus =
    Wgen.generate ~focus { Wgen.paper_p with n_queries = 10 } prng doc
  in
  let final =
    Xtwig_sketch.Xbuild.build ~budget:10240 ~max_steps:200 ~workload ~truth
      ~on_step:(fun sk info ->
        if info.Xtwig_sketch.Xbuild.size >= !next then begin
          next := !next * 2;
          snapshots := (info.Xtwig_sketch.Xbuild.size, sk) :: !snapshots
        end)
      doc
  in
  snapshots := (Sketch.size_bytes final, final) :: !snapshots;

  Format.printf "@.%12s %14s %14s@." "bytes" "xsketch error" "CST error";
  let coarse = Sketch.default_of_doc doc in
  let points = (Sketch.size_bytes coarse, coarse) :: List.rev !snapshots in
  List.iter
    (fun (size, sk) ->
      let cst = Xtwig_cst.Cst.build ~budget_bytes:size doc in
      let cst_err =
        EM.average_error ~truths
          ~estimates:
            (Array.of_list (List.map (fun q -> Xtwig_cst.Cst.estimate cst q) queries))
      in
      Format.printf "%12d %14.3f %14.3f@." size (error sk) cst_err)
    points;

  (* answer the deployment question *)
  let target = 0.10 in
  (match
     List.find_opt (fun (_, sk) -> error sk <= target) points
   with
  | Some (size, _) ->
      Format.printf "@.target %.0f%% average error reached at %d bytes (%.1f KB)@."
        (100.0 *. target) size
        (float_of_int size /. 1024.0)
  | None ->
      Format.printf "@.target %.0f%% average error not reached within 10 KB@."
        (100.0 *. target))
