bench/harness.ml: Array Hashtbl Lazy List Printf Stdlib String Sys Unix Xtwig_cst Xtwig_datagen Xtwig_eval Xtwig_path Xtwig_sketch Xtwig_synopsis Xtwig_util Xtwig_workload Xtwig_xml
