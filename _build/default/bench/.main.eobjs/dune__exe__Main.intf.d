bench/main.mli:
