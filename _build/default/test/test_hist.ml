module SD = Xtwig_hist.Sparse_dist
module EH = Xtwig_hist.Edge_hist
module H1 = Xtwig_hist.Hist1d
module WV = Xtwig_hist.Wavelet

let checkf = Alcotest.(check (float 1e-9))
let checkf4 = Alcotest.(check (float 1e-4))

(* ---------------- Sparse_dist ---------------- *)

let fig4a_dist () =
  (* f_A(10,100) = 0.5, f_A(100,10) = 0.5 *)
  SD.of_counted ~dims:2 [ ([| 10; 100 |], 1); ([| 100; 10 |], 1) ]

let test_sd_basics () =
  let d = fig4a_dist () in
  Alcotest.(check int) "dims" 2 (SD.dims d);
  Alcotest.(check int) "support" 2 (SD.support d);
  Alcotest.(check int) "total" 2 (SD.total d);
  checkf "frac present" 0.5 (SD.frac d [| 10; 100 |]);
  checkf "frac absent" 0.0 (SD.frac d [| 5; 5 |])

let test_sd_merging () =
  let d = SD.of_vectors ~dims:1 [ [| 3 |]; [| 3 |]; [| 5 |] ] in
  Alcotest.(check int) "support merges equal vectors" 2 (SD.support d);
  checkf "merged frac" (2.0 /. 3.0) (SD.frac d [| 3 |])

let test_sd_fracs_sum_to_one () =
  let d = fig4a_dist () in
  checkf "sum 1" 1.0 (SD.fold d ~init:0.0 ~f:(fun a _ f -> a +. f))

let test_sd_expected_product () =
  let d = fig4a_dist () in
  (* E[b*c] = 0.5*1000 + 0.5*1000 = 1000; E[b] = E[c] = 55 *)
  checkf "joint" 1000.0 (SD.expected_product d ~over:[ 0; 1 ]);
  checkf "mean b" 55.0 (SD.mean d 0);
  checkf "mean c" 55.0 (SD.mean d 1);
  (* repeated dim squares: E[b^2] = 0.5*100 + 0.5*10000 = 5050 *)
  checkf "square" 5050.0 (SD.expected_product d ~over:[ 0; 0 ])

let test_sd_marginalize () =
  let d = fig4a_dist () in
  let m = SD.marginalize d ~keep:[ 1 ] in
  Alcotest.(check int) "1 dim" 1 (SD.dims m);
  checkf "marginal frac" 0.5 (SD.frac m [| 100 |]);
  (* order matters *)
  let sw = SD.marginalize d ~keep:[ 1; 0 ] in
  checkf "swapped" 0.5 (SD.frac sw [| 100; 10 |])

let test_sd_correlation () =
  let anti = fig4a_dist () in
  Alcotest.(check bool) "anticorrelated" true (SD.correlation anti 0 1 < -0.99);
  let pos = SD.of_counted ~dims:2 [ ([| 10; 10 |], 1); ([| 100; 100 |], 1) ] in
  Alcotest.(check bool) "correlated" true (SD.correlation pos 0 1 > 0.99);
  let const = SD.of_counted ~dims:2 [ ([| 5; 1 |], 1); ([| 5; 9 |], 1) ] in
  checkf "constant dim" 0.0 (SD.correlation const 0 1)

let test_sd_empty () =
  let d = SD.of_vectors ~dims:2 [] in
  Alcotest.(check int) "support" 0 (SD.support d);
  checkf "frac" 0.0 (SD.frac d [| 0; 0 |]);
  checkf "expected product" 0.0 (SD.expected_product d ~over:[ 0 ])

(* ---------------- Edge_hist ---------------- *)

let test_eh_exact_roundtrip () =
  let d = fig4a_dist () in
  let h = EH.exact d in
  Alcotest.(check bool) "exact" true (EH.is_exact h);
  Alcotest.(check int) "2 buckets" 2 (EH.bucket_count h);
  checkf "total frac" 1.0 (EH.total_frac h);
  checkf "joint preserved" 1000.0 (EH.expected_product h ~over:[ 0; 1 ])

let test_eh_budget_one () =
  let d = fig4a_dist () in
  let h = EH.build ~budget:1 d in
  Alcotest.(check int) "1 bucket" 1 (EH.bucket_count h);
  (* single bucket: independence within -> E[b*c] = 55*55 *)
  checkf "collapsed joint" 3025.0 (EH.expected_product h ~over:[ 0; 1 ]);
  checkf "means preserved" 55.0 (EH.mean h 0)

let test_eh_means_always_preserved () =
  (* bucket means are weighted averages: the marginal mean is exact at
     any budget *)
  let d =
    SD.of_counted ~dims:2
      [ ([| 1; 4 |], 3); ([| 2; 1 |], 5); ([| 9; 2 |], 1); ([| 4; 4 |], 2) ]
  in
  let exact_mean = SD.mean d 0 in
  List.iter
    (fun budget ->
      let h = EH.build ~budget d in
      checkf4 (Printf.sprintf "mean at budget %d" budget) exact_mean (EH.mean h 0))
    [ 1; 2; 3; 4; 100 ]

let test_eh_enum_unconditional () =
  let h = EH.exact (fig4a_dist ()) in
  let buckets = EH.enum h ~ctx:[] in
  Alcotest.(check int) "all buckets" 2 (List.length buckets);
  checkf "weights sum 1" 1.0 (List.fold_left (fun a (w, _) -> a +. w) 0.0 buckets)

let test_eh_enum_conditional () =
  let h = EH.exact (fig4a_dist ()) in
  (* conditioning on b=10 must select only the (10,100) bucket *)
  match EH.enum h ~ctx:[ (0, 10.0) ] with
  | [ (w, rep) ] ->
      checkf "weight renormalized" 1.0 w;
      checkf "c is 100" 100.0 rep.(1)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 bucket, got %d" (List.length l))

let test_eh_enum_nearest_fallback () =
  let h = EH.exact (fig4a_dist ()) in
  (* 55 is in no bucket's range on dim 0; nearest (by mean distance) wins *)
  match EH.enum h ~ctx:[ (0, 30.0) ] with
  | [ (w, rep) ] ->
      checkf "full weight" 1.0 w;
      checkf "nearest is b=10 bucket" 100.0 rep.(1)
  | _ -> Alcotest.fail "expected nearest-bucket fallback"

let test_eh_marginal_frac () =
  let h = EH.exact (fig4a_dist ()) in
  checkf "b=10 mass" 0.5 (EH.marginal_frac h ~ctx:[ (0, 10.0) ]);
  checkf "empty ctx mass" 1.0 (EH.marginal_frac h ~ctx:[]);
  checkf "no mass" 0.0 (EH.marginal_frac h ~ctx:[ (0, 55.0) ])

let test_eh_empty () =
  let h = EH.build (SD.of_vectors ~dims:2 []) in
  Alcotest.(check int) "no buckets" 0 (EH.bucket_count h);
  Alcotest.(check (list (pair (float 0.) (array (float 0.))))) "enum empty" []
    (EH.enum h ~ctx:[])

let test_eh_size_bytes () =
  let h = EH.exact (fig4a_dist ()) in
  Alcotest.(check int) "2 buckets x (2*2+1)*4" (2 * 20) (EH.size_bytes h)

let test_eh_split_quality () =
  (* a bimodal 1-d distribution must split into its two modes *)
  let d =
    SD.of_counted ~dims:1 [ ([| 1 |], 50); ([| 2 |], 50); ([| 99 |], 50); ([| 100 |], 50) ]
  in
  let h = EH.build ~budget:2 d in
  Alcotest.(check int) "2 buckets" 2 (EH.bucket_count h);
  let means = List.map (fun (b : EH.bucket) -> b.mean.(0)) (EH.buckets h) in
  let sorted = List.sort compare means in
  Alcotest.(check bool) "split at the gap" true
    (List.nth sorted 0 < 3.0 && List.nth sorted 1 > 98.0)

(* property: at any budget total_frac = 1 and marginal means exact *)
let gen_dist =
  QCheck2.Gen.(
    let point = pair (pair (0 -- 20) (0 -- 20)) (1 -- 10) in
    map
      (fun pts ->
        SD.of_counted ~dims:2
          (List.map (fun ((a, b), m) -> ([| a; b |], m)) pts))
      (list_size (1 -- 30) point))

let prop_total_frac =
  QCheck2.Test.make ~name:"total_frac = 1" ~count:200
    QCheck2.Gen.(pair gen_dist (1 -- 8))
    (fun (d, budget) ->
      let h = EH.build ~budget d in
      Float.abs (EH.total_frac h -. 1.0) < 1e-9)

let prop_budget_respected =
  QCheck2.Test.make ~name:"bucket_count <= budget" ~count:200
    QCheck2.Gen.(pair gen_dist (1 -- 8))
    (fun (d, budget) -> EH.bucket_count (EH.build ~budget d) <= budget)

let prop_marginal_mean_exact =
  QCheck2.Test.make ~name:"marginal means exact at any budget" ~count:200
    QCheck2.Gen.(pair gen_dist (1 -- 8))
    (fun (d, budget) ->
      let h = EH.build ~budget d in
      Float.abs (EH.mean h 0 -. SD.mean d 0) < 1e-6
      && Float.abs (EH.mean h 1 -. SD.mean d 1) < 1e-6)

let prop_exact_preserves_joint =
  QCheck2.Test.make ~name:"exact histogram preserves E[product]" ~count:200 gen_dist
    (fun d ->
      let h = EH.exact d in
      Float.abs (EH.expected_product h ~over:[ 0; 1 ] -. SD.expected_product d ~over:[ 0; 1 ])
      < 1e-6)

(* ---------------- Hist1d ---------------- *)

let test_h1_basics () =
  let h = H1.build ~budget:4 [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 |] in
  Alcotest.(check int) "count" 8 (H1.count h);
  Alcotest.(check bool) "buckets <= budget+" true (H1.bucket_count h <= 8);
  checkf4 "full range" 1.0 (H1.frac_range h 1.0 8.0);
  checkf4 "le max" 1.0 (H1.frac_le h 8.0);
  checkf4 "le min-1" 0.0 (H1.frac_le h 0.5)

let test_h1_range_estimates () =
  let data = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let h = H1.build ~budget:10 data in
  Alcotest.(check bool) "10% range ~ 0.1" true
    (Float.abs (H1.frac_range h 11.0 20.0 -. 0.1) < 0.05)

let test_h1_cmp () =
  let data = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let h = H1.build ~budget:10 data in
  Alcotest.(check bool) "gt 50 ~ 0.5" true (Float.abs (H1.frac_cmp h `Gt 50.0 -. 0.5) < 0.05);
  Alcotest.(check bool) "le 50 ~ 0.5" true (Float.abs (H1.frac_cmp h `Le 50.0 -. 0.5) < 0.05);
  Alcotest.(check bool) "ne ~ 1" true (H1.frac_cmp h `Ne 50.0 > 0.95)

let test_h1_eq_on_duplicates () =
  let data = Array.concat [ Array.make 50 3.0; Array.make 50 7.0 ] in
  let h = H1.build ~budget:2 data in
  checkf4 "eq 3 = 0.5" 0.5 (H1.frac_cmp h `Eq 3.0);
  checkf4 "eq 7 = 0.5" 0.5 (H1.frac_cmp h `Eq 7.0)

let test_h1_empty () =
  let h = H1.build [||] in
  Alcotest.(check int) "count" 0 (H1.count h);
  checkf "range" 0.0 (H1.frac_range h 0.0 10.0);
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "domain" None (H1.domain h)

let test_h1_domain () =
  let h = H1.build [| 5.0; 1.0; 9.0 |] in
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9)))) "domain" (Some (1.0, 9.0))
    (H1.domain h)

let prop_h1_range_bounds =
  QCheck2.Test.make ~name:"frac_range in [0,1]" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (1 -- 50) (map float_of_int (0 -- 100)))
        (pair (map float_of_int (0 -- 100)) (map float_of_int (0 -- 100))))
    (fun (data, (a, b)) ->
      let h = H1.build ~budget:5 data in
      let lo = Stdlib.min a b and hi = Stdlib.max a b in
      let f = H1.frac_range h lo hi in
      f >= 0.0 && f <= 1.0)

let prop_h1_full_domain_is_one =
  QCheck2.Test.make ~name:"frac over the full domain = 1" ~count:200
    QCheck2.Gen.(array_size (1 -- 50) (map float_of_int (0 -- 100)))
    (fun data ->
      let h = H1.build ~budget:5 data in
      match H1.domain h with
      | None -> false
      | Some (lo, hi) -> Float.abs (H1.frac_range h lo hi -. 1.0) < 1e-6)

(* ---------------- Mcv ---------------- *)

module MCV = Xtwig_hist.Mcv

let test_mcv_basics () =
  let m = MCV.build [ "a"; "a"; "a"; "b"; "b"; "c" ] in
  Alcotest.(check int) "count" 6 (MCV.count m);
  checkf "a" 0.5 (MCV.frac_eq m "a");
  checkf "b" (1.0 /. 3.0) (MCV.frac_eq m "b");
  checkf "c" (1.0 /. 6.0) (MCV.frac_eq m "c");
  checkf "missing" 0.0 (MCV.frac_eq m "zz");
  checkf "ne" 0.5 (MCV.frac_ne m "a")

let test_mcv_budget_and_other () =
  let values =
    List.concat_map (fun (v, n) -> List.init n (fun _ -> v))
      [ ("x", 10); ("y", 5); ("z", 3); ("w", 2) ]
  in
  let m = MCV.build ~budget:2 values in
  Alcotest.(check int) "2 retained" 2 (List.length (MCV.entries m));
  Alcotest.(check (option int)) "x is rank 0" (Some 0) (MCV.rank m "x");
  Alcotest.(check (option int)) "z dropped" None (MCV.rank m "z");
  checkf "other mass" 0.25 (MCV.other_mass m);
  Alcotest.(check int) "other distinct" 2 (MCV.other_distinct m);
  (* dropped values share the other mass *)
  checkf "z estimate" 0.125 (MCV.frac_eq m "z")

let test_mcv_deterministic_ties () =
  let m1 = MCV.build ~budget:1 [ "b"; "a" ] in
  let m2 = MCV.build ~budget:1 [ "a"; "b" ] in
  Alcotest.(check (list string)) "tie broken by name"
    (List.map fst (MCV.entries m1))
    (List.map fst (MCV.entries m2))

let prop_mcv_mass_conserved =
  QCheck2.Test.make ~name:"mcv masses sum to 1" ~count:200
    QCheck2.Gen.(
      pair (1 -- 6)
        (list_size (1 -- 40) (string_size ~gen:(char_range 'a' 'e') (1 -- 2))))
    (fun (budget, values) ->
      let m = MCV.build ~budget values in
      let kept = List.fold_left (fun a (_, f) -> a +. f) 0.0 (MCV.entries m) in
      Float.abs (kept +. MCV.other_mass m -. 1.0) < 1e-9)

(* ---------------- Wavelet ---------------- *)

let test_wavelet_exact_reconstruction () =
  let data = [| 4.0; 2.0; 8.0; 6.0; 1.0; 0.0; 3.0; 5.0 |] in
  let w = WV.build ~budget:8 data in
  let r = WV.reconstruct w in
  Array.iteri (fun i x -> checkf4 (Printf.sprintf "x%d" i) x r.(i)) data

let test_wavelet_truncation () =
  let data = Array.init 16 (fun i -> if i < 8 then 10.0 else 2.0) in
  let w = WV.build ~budget:2 data in
  Alcotest.(check bool) "kept <= 2" true (WV.coefficients_kept w <= 2);
  let r = WV.reconstruct w in
  (* a two-level step function is exactly 2 Haar coefficients *)
  Array.iteri
    (fun i x -> checkf4 (Printf.sprintf "step%d" i) (if i < 8 then 10.0 else 2.0) x)
    r

let test_wavelet_nonpow2 () =
  let data = [| 1.0; 2.0; 3.0 |] in
  let w = WV.build ~budget:16 data in
  Alcotest.(check int) "length preserved" 3 (Array.length (WV.reconstruct w));
  checkf4 "point" 2.0 (WV.point w 1);
  checkf "out of range" 0.0 (WV.point w 7)

let test_wavelet_empty () =
  let w = WV.build [||] in
  Alcotest.(check int) "no coeffs" 0 (WV.coefficients_kept w);
  Alcotest.(check int) "empty" 0 (Array.length (WV.reconstruct w))

let prop_wavelet_full_budget_exact =
  QCheck2.Test.make ~name:"full budget reconstructs exactly" ~count:100
    QCheck2.Gen.(array_size (1 -- 32) (map float_of_int (0 -- 50)))
    (fun data ->
      let w = WV.build ~budget:64 data in
      let r = WV.reconstruct w in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) data r)

let () =
  Alcotest.run "histogram"
    [
      ( "sparse-dist",
        [
          Alcotest.test_case "basics" `Quick test_sd_basics;
          Alcotest.test_case "merging" `Quick test_sd_merging;
          Alcotest.test_case "fracs sum to 1" `Quick test_sd_fracs_sum_to_one;
          Alcotest.test_case "expected product" `Quick test_sd_expected_product;
          Alcotest.test_case "marginalize" `Quick test_sd_marginalize;
          Alcotest.test_case "correlation" `Quick test_sd_correlation;
          Alcotest.test_case "empty" `Quick test_sd_empty;
        ] );
      ( "edge-hist",
        [
          Alcotest.test_case "exact roundtrip" `Quick test_eh_exact_roundtrip;
          Alcotest.test_case "budget 1 collapses" `Quick test_eh_budget_one;
          Alcotest.test_case "means preserved at any budget" `Quick
            test_eh_means_always_preserved;
          Alcotest.test_case "enum unconditional" `Quick test_eh_enum_unconditional;
          Alcotest.test_case "enum conditional" `Quick test_eh_enum_conditional;
          Alcotest.test_case "enum nearest fallback" `Quick test_eh_enum_nearest_fallback;
          Alcotest.test_case "marginal frac" `Quick test_eh_marginal_frac;
          Alcotest.test_case "empty" `Quick test_eh_empty;
          Alcotest.test_case "size bytes" `Quick test_eh_size_bytes;
          Alcotest.test_case "split quality" `Quick test_eh_split_quality;
        ] );
      ( "hist1d",
        [
          Alcotest.test_case "basics" `Quick test_h1_basics;
          Alcotest.test_case "range estimates" `Quick test_h1_range_estimates;
          Alcotest.test_case "comparisons" `Quick test_h1_cmp;
          Alcotest.test_case "equality on duplicates" `Quick test_h1_eq_on_duplicates;
          Alcotest.test_case "empty" `Quick test_h1_empty;
          Alcotest.test_case "domain" `Quick test_h1_domain;
        ] );
      ( "mcv",
        [
          Alcotest.test_case "basics" `Quick test_mcv_basics;
          Alcotest.test_case "budget and other mass" `Quick test_mcv_budget_and_other;
          Alcotest.test_case "deterministic ties" `Quick test_mcv_deterministic_ties;
        ] );
      ( "wavelet",
        [
          Alcotest.test_case "exact reconstruction" `Quick test_wavelet_exact_reconstruction;
          Alcotest.test_case "truncation" `Quick test_wavelet_truncation;
          Alcotest.test_case "non power of two" `Quick test_wavelet_nonpow2;
          Alcotest.test_case "empty" `Quick test_wavelet_empty;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_total_frac;
            prop_budget_respected;
            prop_marginal_mean_exact;
            prop_exact_preserves_joint;
            prop_h1_range_bounds;
            prop_h1_full_domain_is_one;
            prop_mcv_mass_conserved;
            prop_wavelet_full_budget_exact;
          ] );
    ]
