module G = Xtwig_synopsis.Graph_synopsis
module Tsn = Xtwig_synopsis.Tsn
module Doc = Xtwig_xml.Doc
module Fx = Xtwig_fixtures.Fixtures

let bib = Fx.bibliography ()

let node_named syn label =
  match G.nodes_with_label syn label with
  | [ n ] -> n
  | l -> Alcotest.failf "expected one %s node, got %d" label (List.length l)

(* ---------------- label split ---------------- *)

let test_label_split_counts () =
  let syn = G.label_split bib in
  Alcotest.(check int) "one node per tag" (Doc.tag_count bib) (G.node_count syn);
  Alcotest.(check int) "author extent" 3 (G.extent_size syn (node_named syn "author"));
  Alcotest.(check int) "paper extent" 4 (G.extent_size syn (node_named syn "paper"));
  Alcotest.(check int) "keyword extent" 6 (G.extent_size syn (node_named syn "keyword"))

let test_extent_partition () =
  let syn = G.label_split bib in
  let total = ref 0 in
  for n = 0 to G.node_count syn - 1 do
    total := !total + G.extent_size syn n;
    Array.iter
      (fun e ->
        Alcotest.(check int) "node_of matches extent" n (G.node_of_elem syn e);
        Alcotest.(check string) "uniform tag" (G.tag_name syn n) (Doc.tag_name bib e))
      (G.extent syn n)
  done;
  Alcotest.(check int) "extents partition the document" (Doc.size bib) !total

let test_root_node () =
  let syn = G.label_split bib in
  Alcotest.(check string) "root node tag" "bibliography"
    (G.tag_name syn (G.root_node syn))

(* ---------------- edges and stability ---------------- *)

let test_edges () =
  let syn = G.label_split bib in
  let a = node_named syn "author" and p = node_named syn "paper" in
  (match G.edge syn ~src:a ~dst:p with
  | Some e ->
      Alcotest.(check int) "4 paper edges" 4 e.count;
      Alcotest.(check bool) "A->P backward stable (every paper under author)" true
        e.b_stable;
      Alcotest.(check bool) "A->P forward stable (every author has a paper)" true
        e.f_stable
  | None -> Alcotest.fail "author->paper edge missing");
  Alcotest.(check (option bool)) "no keyword->author edge" None
    (Option.map (fun _ -> true) (G.edge syn ~src:(node_named syn "keyword") ~dst:a))

let test_fstability_book () =
  let syn = G.label_split bib in
  let a = node_named syn "author" and b = node_named syn "book" in
  match G.edge syn ~src:a ~dst:b with
  | Some e ->
      Alcotest.(check bool) "A->B not F-stable (only a1 has a book)" false e.f_stable;
      Alcotest.(check bool) "A->B backward stable" true e.b_stable;
      Alcotest.(check int) "one book" 1 e.count
  | None -> Alcotest.fail "author->book edge missing"

let test_bstability_title () =
  (* titles live under both paper and book: neither incoming edge is
     B-stable *)
  let syn = G.label_split bib in
  let t = node_named syn "title" in
  let incoming = G.in_edges syn t in
  Alcotest.(check int) "two incoming edges" 2 (List.length incoming);
  List.iter
    (fun (e : G.edge) ->
      Alcotest.(check bool) "title not B-stable" false e.b_stable)
    incoming

let test_src_with_child () =
  let syn = G.label_split bib in
  let a = node_named syn "author" and p = node_named syn "paper" in
  match G.edge syn ~src:a ~dst:p with
  | Some e -> Alcotest.(check int) "3 authors have papers" 3 e.src_with_child
  | None -> Alcotest.fail "edge missing"

let test_perfect_synopsis () =
  let syn = G.perfect bib in
  Alcotest.(check int) "one node per element" (Doc.size bib) (G.node_count syn);
  (* every edge of a perfect synopsis of a tree is trivially stable *)
  List.iter
    (fun (e : G.edge) ->
      Alcotest.(check bool) "b-stable" true e.b_stable;
      Alcotest.(check bool) "f-stable" true e.f_stable;
      Alcotest.(check int) "count 1" 1 e.count)
    (G.edges syn)

(* ---------------- splits ---------------- *)

let test_split_by_parent () =
  let syn = G.label_split bib in
  let t = node_named syn "title" in
  let syn' = G.split syn ~node:t ~group_of:(G.b_stabilize_groups syn ~dst:t) in
  (* title splits into paper-titles and book-titles *)
  Alcotest.(check int) "one extra node" (G.node_count syn + 1) (G.node_count syn');
  let titles = G.nodes_with_label syn' "title" in
  Alcotest.(check int) "two title nodes" 2 (List.length titles);
  List.iter
    (fun tn ->
      List.iter
        (fun (e : G.edge) ->
          Alcotest.(check bool) "incoming edges now B-stable" true e.b_stable)
        (G.in_edges syn' tn))
    titles

let test_split_noop () =
  let syn = G.label_split bib in
  let p = node_named syn "paper" in
  (* papers all share the author parent: b-stabilize grouping is a no-op *)
  let syn' = G.split syn ~node:p ~group_of:(G.b_stabilize_groups syn ~dst:p) in
  Alcotest.(check bool) "physically unchanged" true (syn' == syn)

let test_split_f_stabilize () =
  let syn = G.label_split bib in
  let a = node_named syn "author" and b = node_named syn "book" in
  let syn' = G.split syn ~node:a ~group_of:(G.f_stabilize_groups syn ~dst:b) in
  let authors = G.nodes_with_label syn' "author" in
  Alcotest.(check int) "authors split in two" 2 (List.length authors);
  let with_book =
    List.filter
      (fun n ->
        match G.nodes_with_label syn' "book" with
        | [ bn ] -> G.edge syn' ~src:n ~dst:bn <> None
        | _ -> false)
      authors
  in
  (match with_book with
  | [ n ] -> (
      Alcotest.(check int) "1 author with book" 1 (G.extent_size syn' n);
      let bn = List.hd (G.nodes_with_label syn' "book") in
      match G.edge syn' ~src:n ~dst:bn with
      | Some e -> Alcotest.(check bool) "edge now F-stable" true e.f_stable
      | None -> Alcotest.fail "edge vanished")
  | _ -> Alcotest.fail "expected exactly one author node with book edge");
  (* document partition is preserved *)
  let total = ref 0 in
  for n = 0 to G.node_count syn' - 1 do
    total := !total + G.extent_size syn' n
  done;
  Alcotest.(check int) "still a partition" (Doc.size bib) !total

let test_of_partition_validation () =
  Alcotest.(check bool) "mixed tags rejected" true
    (match G.of_partition bib (Array.make (Doc.size bib) 0) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "wrong length rejected" true
    (match G.of_partition bib [| 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------------- TSN ---------------- *)

let test_b_stable_ancestors () =
  let syn = G.label_split bib in
  let k = node_named syn "keyword" in
  let chain = Tsn.b_stable_ancestors syn k in
  let names = List.map (G.tag_name syn) chain in
  Alcotest.(check (list string)) "keyword chain"
    [ "keyword"; "paper"; "author"; "bibliography" ]
    names

let test_b_stable_ancestors_break () =
  let syn = G.label_split bib in
  let t = node_named syn "title" in
  let names = List.map (G.tag_name syn) (Tsn.b_stable_ancestors syn t) in
  (* title has no B-stable incoming edge: the chain stops at itself *)
  Alcotest.(check (list string)) "title chain" [ "title" ] names

let test_scope_edges () =
  let syn = G.label_split bib in
  let p = node_named syn "paper" in
  let scope = Tsn.scope_edges syn p in
  let name (u, v) = (G.tag_name syn u, G.tag_name syn v) in
  let names = List.map name scope in
  (* F-stable out-edges of paper: title, year, keyword; of author: name,
     paper; of bibliography: author. Book is not F-stable. *)
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "scope has %s->%s" (fst expected) (snd expected))
        true (List.mem expected names))
    [
      ("paper", "title"); ("paper", "year"); ("paper", "keyword");
      ("author", "name"); ("author", "paper"); ("bibliography", "author");
    ];
  Alcotest.(check bool) "book not in scope" false (List.mem ("author", "book") names)

let test_eligible () =
  let syn = G.label_split bib in
  let p = node_named syn "paper" in
  let a = node_named syn "author" in
  let k = node_named syn "keyword" in
  let b = node_named syn "book" in
  Alcotest.(check bool) "own F-stable edge" true (Tsn.eligible syn p ~src:p ~dst:k);
  Alcotest.(check bool) "ancestor edge" true (Tsn.eligible syn p ~src:a ~dst:p);
  Alcotest.(check bool) "unstable edge refused" false (Tsn.eligible syn p ~src:a ~dst:b)

let test_tsn_nodes_dedup () =
  let syn = G.label_split bib in
  let p = node_named syn "paper" in
  let nodes = Tsn.nodes syn p in
  Alcotest.(check int) "no duplicates" (List.length nodes)
    (List.length (List.sort_uniq compare nodes))

(* ---------------- structure bytes ---------------- *)

let test_structure_bytes () =
  let syn = G.label_split bib in
  Alcotest.(check int) "8/node + 9/edge"
    ((8 * G.node_count syn) + (9 * G.edge_count syn))
    (G.structure_bytes syn)

(* property: on random documents, stability flags match their definition *)
let prop_stability_definition =
  QCheck2.Test.make ~name:"stability flags match definitions" ~count:60
    QCheck2.Gen.(0 -- 10_000)
    (fun seed ->
      let doc = Xtwig_datagen.Imdb.generate ~seed ~scale:0.002 () in
      let syn = G.label_split doc in
      List.for_all
        (fun (e : G.edge) ->
          let b_def =
            Array.for_all
              (fun el ->
                match Doc.parent doc el with
                | Some p -> G.node_of_elem syn p = e.src
                | None -> false)
              (G.extent syn e.dst)
          in
          let f_def =
            Array.for_all
              (fun el ->
                Array.exists
                  (fun k -> G.node_of_elem syn k = e.dst)
                  (Doc.children doc el))
              (G.extent syn e.src)
          in
          e.b_stable = b_def && e.f_stable = f_def)
        (G.edges syn))

let prop_split_preserves_partition =
  QCheck2.Test.make ~name:"split preserves element partition" ~count:40
    QCheck2.Gen.(pair (0 -- 1000) (0 -- 5))
    (fun (seed, node_pick) ->
      let doc = Xtwig_datagen.Sprot.generate ~seed ~scale:0.01 () in
      let syn = G.label_split doc in
      let n = node_pick mod G.node_count syn in
      let syn' = G.split syn ~node:n ~group_of:(fun e -> e mod 2) in
      let total = ref 0 in
      for v = 0 to G.node_count syn' - 1 do
        total := !total + G.extent_size syn' v
      done;
      !total = Doc.size doc)

let () =
  Alcotest.run "synopsis"
    [
      ( "label-split",
        [
          Alcotest.test_case "node counts" `Quick test_label_split_counts;
          Alcotest.test_case "extents partition" `Quick test_extent_partition;
          Alcotest.test_case "root node" `Quick test_root_node;
        ] );
      ( "stability",
        [
          Alcotest.test_case "edges" `Quick test_edges;
          Alcotest.test_case "F-stability" `Quick test_fstability_book;
          Alcotest.test_case "B-stability" `Quick test_bstability_title;
          Alcotest.test_case "src_with_child" `Quick test_src_with_child;
          Alcotest.test_case "perfect synopsis" `Quick test_perfect_synopsis;
        ] );
      ( "split",
        [
          Alcotest.test_case "b-stabilize split" `Quick test_split_by_parent;
          Alcotest.test_case "no-op split" `Quick test_split_noop;
          Alcotest.test_case "f-stabilize split" `Quick test_split_f_stabilize;
          Alcotest.test_case "partition validation" `Quick test_of_partition_validation;
        ] );
      ( "tsn",
        [
          Alcotest.test_case "b-stable ancestors" `Quick test_b_stable_ancestors;
          Alcotest.test_case "broken chain" `Quick test_b_stable_ancestors_break;
          Alcotest.test_case "scope edges" `Quick test_scope_edges;
          Alcotest.test_case "eligibility" `Quick test_eligible;
          Alcotest.test_case "nodes dedup" `Quick test_tsn_nodes_dedup;
        ] );
      ( "size",
        [ Alcotest.test_case "structure bytes" `Quick test_structure_bytes ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_stability_definition; prop_split_preserves_partition ] );
    ]
