(* Differential tests: every estimator in the repository cross-checked
   against exact computation on documents from all three generators.
   These are the "does the whole pipeline tell the truth" checks that
   unit tests on hand-built fixtures cannot provide. *)

module G = Xtwig_synopsis.Graph_synopsis
module Tsn = Xtwig_synopsis.Tsn
module Sketch = Xtwig_sketch.Sketch
module Est = Xtwig_sketch.Estimator
module Cst = Xtwig_cst.Cst
module Wgen = Xtwig_workload.Wgen
module EM = Xtwig_workload.Error_metric
module Prng = Xtwig_util.Prng
module Doc = Xtwig_xml.Doc

let docs =
  lazy
    [
      ("xmark", Xtwig_datagen.Xmark.generate ~scale:0.03 ());
      ("imdb", Xtwig_datagen.Imdb.generate ~scale:0.03 ());
      ("sprot", Xtwig_datagen.Sprot.generate ~scale:0.03 ());
    ]

let exact doc q = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q)

(* 1. Path counts: estimator path estimates on a stabilized synopsis
   equal exact path counts for every root-to-leaf label path. *)
let test_stabilized_path_counts () =
  List.iter
    (fun (name, doc) ->
      let syn = G.stabilize_fixpoint ~max_rounds:2000 (G.label_split doc) in
      let sk = Sketch.coarsest syn in
      (* every distinct root path in the document *)
      let paths = Hashtbl.create 64 in
      Doc.iter doc (fun e ->
          Hashtbl.replace paths (Doc.label_path doc e) ());
      Hashtbl.iter
        (fun labels () ->
          let p = List.map (fun l -> Xtwig_path.Path_types.step l) labels in
          let truth = float_of_int (Xtwig_eval.Eval_path.count doc ~from:None p) in
          let est = Est.estimate_path sk p in
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "%s: /%s" name (String.concat "/" labels))
            truth est)
        paths)
    (Lazy.force docs)

(* 2. CST: unpruned trie path counts equal exact counts for every
   distinct label path, absolute and suffix forms. *)
let test_cst_path_counts () =
  List.iter
    (fun (name, doc) ->
      let cst = Cst.build doc in
      let paths = Hashtbl.create 64 in
      Doc.iter doc (fun e -> Hashtbl.replace paths (Doc.label_path doc e) ());
      Hashtbl.iter
        (fun labels () ->
          let p = List.map (fun l -> Xtwig_path.Path_types.step l) labels in
          let truth = float_of_int (Xtwig_eval.Eval_path.count doc ~from:None p) in
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "%s anchored /%s" name (String.concat "/" labels))
            truth
            (Cst.path_count cst ~anchored:true labels);
          (* suffix form: //l_k for the last label alone *)
          match List.rev labels with
          | last :: _ ->
              let suffix_truth =
                float_of_int
                  (Xtwig_eval.Eval_path.count doc ~from:None
                     [ Xtwig_path.Path_types.step ~axis:Descendant last ])
              in
              Alcotest.(check (float 1e-6))
                (Printf.sprintf "%s //%s" name last)
                suffix_truth
                (Cst.path_count cst ~anchored:false [ last ])
          | [] -> ())
        paths)
    (Lazy.force docs)

(* 3. Value histograms: estimator value fractions vs exact fractions
   for range predicates on every numeric tag. *)
let test_value_fractions () =
  List.iter
    (fun (name, doc) ->
      let syn = G.label_split doc in
      let sk = Sketch.coarsest ~vbudget:64 syn in
      for t = 0 to Doc.tag_count doc - 1 do
        let elems = Doc.nodes_with_tag doc t in
        let values =
          Array.to_list elems
          |> List.filter_map (fun e -> Xtwig_xml.Value.as_float (Doc.value doc e))
        in
        if List.length values = Array.length elems && values <> [] then begin
          let lo = List.fold_left Stdlib.min infinity values in
          let hi = List.fold_left Stdlib.max neg_infinity values in
          let mid = (lo +. hi) /. 2.0 in
          let truth =
            float_of_int (List.length (List.filter (fun v -> v <= mid) values))
            /. float_of_int (List.length values)
          in
          match G.nodes_with_label syn (Doc.tag_to_string doc t) with
          | [ n ] ->
              let est =
                Sketch.value_frac sk n
                  (Xtwig_path.Path_types.Cmp (Le, Xtwig_xml.Value.Float mid))
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s <= mid: |%.3f - %.3f| < 0.08" name
                   (Doc.tag_to_string doc t) truth est)
                true
                (Float.abs (truth -. est) < 0.08)
          | _ -> ()
        end
      done)
    (Lazy.force docs)

(* 4. Existence fractions: Sketch.exist_frac equals the exact fraction
   for every synopsis edge. *)
let test_exist_fracs () =
  List.iter
    (fun (name, doc) ->
      let syn = G.label_split doc in
      let sk = Sketch.coarsest syn in
      List.iter
        (fun (e : G.edge) ->
          let exact_frac =
            let src_elems = G.extent syn e.src in
            let with_child =
              Array.to_list src_elems
              |> List.filter (fun el ->
                     Array.exists
                       (fun k -> G.node_of_elem syn k = e.dst)
                       (Doc.children doc el))
              |> List.length
            in
            float_of_int with_child /. float_of_int (Array.length src_elems)
          in
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s edge %d->%d" name e.src e.dst)
            exact_frac
            (Sketch.exist_frac sk ~src:e.src ~dst:e.dst))
        (G.edges syn))
    (Lazy.force docs)

(* 5. Estimation is an unbiased-ish mass estimate on single-node
   queries: //tag estimates equal exact tag counts on any synopsis. *)
let test_tag_count_queries () =
  List.iter
    (fun (name, doc) ->
      let sk = Sketch.default_of_doc doc in
      for t = 0 to Doc.tag_count doc - 1 do
        let label = Doc.tag_to_string doc t in
        let q =
          {
            Xtwig_path.Path_types.path =
              [ Xtwig_path.Path_types.step ~axis:Descendant label ];
            subs = [];
          }
        in
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "%s //%s" name label)
          (float_of_int (Array.length (Doc.nodes_with_tag doc t)))
          (Est.estimate sk q)
      done)
    (Lazy.force docs)

(* 6. Monotonicity of the whole stack: on every generator, the XBUILD
   result never does worse than the coarse synopsis on a held-out
   workload. *)
let test_xbuild_never_worse () =
  List.iter
    (fun (name, doc) ->
      let truth_tbl = Hashtbl.create 128 in
      let truth q =
        let k = Xtwig_path.Path_printer.twig_to_string q in
        match Hashtbl.find_opt truth_tbl k with
        | Some v -> v
        | None ->
            let v = exact doc q in
            Hashtbl.add truth_tbl k v;
            v
      in
      let queries = Wgen.generate { Wgen.paper_p with n_queries = 40 } (Prng.create 5) doc in
      let truths = Array.of_list (List.map truth queries) in
      let err sk =
        EM.average_error ~truths
          ~estimates:(Array.of_list (List.map (fun q -> Est.estimate sk q) queries))
      in
      let coarse = Sketch.default_of_doc doc in
      let workload prng ~focus =
        Wgen.generate ~focus { Wgen.paper_p with n_queries = 8 } prng doc
      in
      let built =
        Xtwig_sketch.Xbuild.build ~seed:13 ~max_steps:40 ~budget:4096 ~workload
          ~truth doc
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: built %.3f <= coarse %.3f + eps" name (err built)
           (err coarse))
        true
        (err built <= err coarse +. 0.02))
    (Lazy.force docs)

let () =
  Alcotest.run "differential"
    [
      ( "cross-checks",
        [
          Alcotest.test_case "stabilized path counts exact" `Slow
            test_stabilized_path_counts;
          Alcotest.test_case "CST path counts exact" `Slow test_cst_path_counts;
          Alcotest.test_case "value fractions" `Slow test_value_fractions;
          Alcotest.test_case "existence fractions exact" `Slow test_exist_fracs;
          Alcotest.test_case "tag count queries exact" `Slow test_tag_count_queries;
          Alcotest.test_case "xbuild never worse" `Slow test_xbuild_never_worse;
        ] );
    ]
