module Wgen = Xtwig_workload.Wgen
module EM = Xtwig_workload.Error_metric
module Prng = Xtwig_util.Prng
module Doc = Xtwig_xml.Doc
open Xtwig_path.Path_types

let doc = Xtwig_datagen.Imdb.generate ~scale:0.05 ()

let gen ?focus spec seed = Wgen.generate ?focus spec (Prng.create seed) doc

(* ---------------- positivity and shape ---------------- *)

let test_positive_by_construction () =
  let qs = gen { Wgen.paper_p with n_queries = 40 } 1 in
  Alcotest.(check int) "40 queries" 40 (List.length qs);
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Xtwig_path.Path_printer.twig_to_string q ^ " positive")
        true
        (Xtwig_eval.Eval_twig.selectivity doc q > 0))
    qs

let test_node_count_range () =
  let spec = { Wgen.paper_p with n_queries = 60 } in
  List.iter
    (fun q ->
      let n = twig_size q in
      Alcotest.(check bool) "4-8 twig nodes" true
        (n >= spec.Wgen.min_nodes && n <= spec.Wgen.max_nodes))
    (gen spec 2)

let test_p_workload_no_value_preds () =
  List.iter
    (fun q ->
      Alcotest.(check bool) "no value predicate" false (twig_has_value_pred q))
    (gen { Wgen.paper_p with n_queries = 40 } 3)

let test_p_workload_has_branches () =
  let qs = gen { Wgen.paper_p with n_queries = 40 } 4 in
  let branchy = List.length (List.filter twig_has_branches qs) in
  Alcotest.(check bool) "a good share of queries branch" true (branchy >= 10)

let test_pv_workload_value_preds () =
  let qs = gen { Wgen.paper_pv with n_queries = 60 } 5 in
  let with_preds = List.length (List.filter twig_has_value_pred qs) in
  (* around half, as in the paper *)
  Alcotest.(check bool) "roughly half carry value predicates" true
    (with_preds > 15 && with_preds < 50);
  (* and they remain positive *)
  List.iter
    (fun q ->
      Alcotest.(check bool) "positive with predicate" true
        (Xtwig_eval.Eval_twig.selectivity doc q > 0))
    qs

let test_simple_paths_workload () =
  let qs = gen { Wgen.simple_paths with n_queries = 40 } 6 in
  List.iter
    (fun q ->
      Alcotest.(check bool) "no branches" false (twig_has_branches q);
      Alcotest.(check bool) "no value preds" false (twig_has_value_pred q))
    qs

let test_determinism () =
  let a = gen { Wgen.paper_p with n_queries = 10 } 7 in
  let b = gen { Wgen.paper_p with n_queries = 10 } 7 in
  Alcotest.(check (list string)) "same queries"
    (List.map Xtwig_path.Path_printer.twig_to_string a)
    (List.map Xtwig_path.Path_printer.twig_to_string b)

let test_focus_bias () =
  let spec = { Wgen.paper_p with n_queries = 30 } in
  let qs = gen ~focus:[ "review" ] spec 8 in
  let mentioning =
    List.length (List.filter (fun q -> List.mem "review" (twig_labels q)) qs)
  in
  Alcotest.(check bool) "most queries touch the focus label" true
    (mentioning * 2 > List.length qs)

let test_negative_workload () =
  let qs = Wgen.generate_negative { Wgen.paper_p with n_queries = 20 } (Prng.create 9) doc in
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Xtwig_path.Path_printer.twig_to_string q)
        0
        (Xtwig_eval.Eval_twig.selectivity doc q))
    qs

let test_characteristics () =
  let qs = gen { Wgen.paper_p with n_queries = 30 } 10 in
  let avg_card, avg_fanout = Wgen.characteristics doc qs in
  Alcotest.(check bool) "positive avg cardinality" true (avg_card > 0.0);
  (* internal fanout sits in the paper's 1.5-2 territory *)
  Alcotest.(check bool) "fanout plausible" true (avg_fanout >= 1.0 && avg_fanout <= 4.0)

(* ---------------- error metric ---------------- *)

let checkf = Alcotest.(check (float 1e-9))

let test_metric_perfect () =
  let truths = [| 10.0; 100.0; 50.0 |] in
  checkf "zero error" 0.0 (EM.average_error ~truths ~estimates:truths)

let test_metric_sanity_bound () =
  (* c=0 (negative query) doesn't divide by zero: uses the bound *)
  let truths = [| 0.0; 100.0; 100.0; 100.0; 100.0; 100.0; 100.0; 100.0; 100.0; 100.0 |] in
  let estimates = [| 50.0; 100.0; 100.0; 100.0; 100.0; 100.0; 100.0; 100.0; 100.0; 100.0 |] in
  let m = EM.evaluate ~truths ~estimates in
  checkf "sanity = p10 of positives" 100.0 m.EM.sanity;
  checkf "error on the negative query" 0.5 m.EM.per_query.(0)

let test_metric_low_count_damping () =
  (* a tiny true count with a modest absolute error is not blown up:
     with 20 queries the 10th percentile sits above the 1.0 outlier *)
  let truths = Array.init 20 (fun i -> if i = 0 then 1.0 else float_of_int (i * 100)) in
  let estimates = Array.copy truths in
  estimates.(0) <- 10.0;
  let m = EM.evaluate ~truths ~estimates in
  Alcotest.(check (float 1e-9)) "sanity is the second-smallest" 100.0 m.EM.sanity;
  Alcotest.(check bool) "damped by sanity bound" true (m.EM.per_query.(0) <= 0.1)

let test_metric_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Error_metric.evaluate: length mismatch") (fun () ->
      ignore (EM.evaluate ~truths:[| 1.0 |] ~estimates:[||]))

let prop_metric_nonnegative =
  QCheck2.Test.make ~name:"errors are non-negative" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (1 -- 20) (map float_of_int (0 -- 1000)))
        (array_size (1 -- 20) (map float_of_int (0 -- 1000))))
    (fun (a, b) ->
      let n = Stdlib.min (Array.length a) (Array.length b) in
      let truths = Array.sub a 0 n and estimates = Array.sub b 0 n in
      let m = EM.evaluate ~truths ~estimates in
      m.EM.average >= 0.0 && Array.for_all (fun e -> e >= 0.0) m.EM.per_query)

let () =
  Alcotest.run "workload"
    [
      ( "generation",
        [
          Alcotest.test_case "positive by construction" `Quick
            test_positive_by_construction;
          Alcotest.test_case "node count range" `Quick test_node_count_range;
          Alcotest.test_case "P: no value predicates" `Quick
            test_p_workload_no_value_preds;
          Alcotest.test_case "P: branches present" `Quick test_p_workload_has_branches;
          Alcotest.test_case "P+V: value predicates" `Quick test_pv_workload_value_preds;
          Alcotest.test_case "simple paths" `Quick test_simple_paths_workload;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "focus bias" `Quick test_focus_bias;
          Alcotest.test_case "negative workload" `Quick test_negative_workload;
          Alcotest.test_case "characteristics (Table 2)" `Quick test_characteristics;
        ] );
      ( "error-metric",
        [
          Alcotest.test_case "perfect estimates" `Quick test_metric_perfect;
          Alcotest.test_case "sanity bound" `Quick test_metric_sanity_bound;
          Alcotest.test_case "low-count damping" `Quick test_metric_low_count_damping;
          Alcotest.test_case "length mismatch" `Quick test_metric_mismatch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_metric_nonnegative ] );
    ]
