module G = Xtwig_synopsis.Graph_synopsis
module Sketch = Xtwig_sketch.Sketch
module Est = Xtwig_sketch.Estimator
module Xbuild = Xtwig_sketch.Xbuild
module Wgen = Xtwig_workload.Wgen
module EM = Xtwig_workload.Error_metric
module Prng = Xtwig_util.Prng

let doc = Xtwig_datagen.Imdb.generate ~scale:0.05 ()

let truth_cache : (string, float) Hashtbl.t = Hashtbl.create 512

let truth q =
  let key = Xtwig_path.Path_printer.twig_to_string q in
  match Hashtbl.find_opt truth_cache key with
  | Some v -> v
  | None ->
      let v = float_of_int (Xtwig_eval.Eval_twig.selectivity doc q) in
      Hashtbl.add truth_cache key v;
      v

let workload prng ~focus =
  Wgen.generate ~focus { Wgen.paper_p with n_queries = 8 } prng doc

let build ?(budget = 3000) ?(max_steps = 40) ?(seed = 11) () =
  Xbuild.build ~seed ~candidates:6 ~max_steps ~workload ~truth ~budget doc

(* evaluation workload, distinct from the scoring workload *)
let eval_queries =
  Wgen.generate { Wgen.paper_p with n_queries = 60 } (Prng.create 99) doc

let eval_error sk =
  let truths = Array.of_list (List.map truth eval_queries) in
  let estimates =
    Array.of_list (List.map (fun q -> Est.estimate sk q) eval_queries)
  in
  EM.average_error ~truths ~estimates

let test_respects_budget () =
  let sk = build ~budget:2500 () in
  (* one step may overshoot by the size of a single refinement; the
     loop must stop right after crossing *)
  Alcotest.(check bool) "near budget" true (Sketch.size_bytes sk <= 2500 + 2000)

let test_reduces_error () =
  let coarse = Sketch.default_of_doc doc in
  let sk = build ~budget:4000 ~max_steps:60 () in
  let e0 = eval_error coarse and e1 = eval_error sk in
  Alcotest.(check bool)
    (Printf.sprintf "error improved (%.3f -> %.3f)" e0 e1)
    true (e1 < e0)

let test_on_step_reporting () =
  let sizes = ref [] in
  let _ =
    Xbuild.build ~seed:3 ~candidates:4 ~max_steps:10 ~workload ~truth ~budget:2000
      ~on_step:(fun sk info ->
        Alcotest.(check int) "size matches sketch" (Sketch.size_bytes sk)
          info.Xbuild.size;
        sizes := info.Xbuild.size :: !sizes)
      doc
  in
  let sizes = List.rev !sizes in
  Alcotest.(check bool) "steps happened" true (List.length sizes > 0);
  (* sizes increase monotonically *)
  let rec mono = function
    | a :: (b :: _ as rest) -> a < b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone growth" true (mono sizes)

let test_determinism () =
  let a = build ~seed:21 ~budget:2000 ~max_steps:15 () in
  let b = build ~seed:21 ~budget:2000 ~max_steps:15 () in
  Alcotest.(check int) "same size" (Sketch.size_bytes a) (Sketch.size_bytes b);
  let q = List.hd eval_queries in
  Alcotest.(check (float 1e-9)) "same estimates" (Est.estimate a q) (Est.estimate b q)

let test_max_steps () =
  let steps = ref 0 in
  let _ =
    Xbuild.build ~seed:2 ~candidates:4 ~max_steps:5 ~workload ~truth
      ~budget:1_000_000
      ~on_step:(fun _ _ -> incr steps)
      doc
  in
  Alcotest.(check bool) "stopped at max_steps" true (!steps <= 5)

let test_workload_error_helper () =
  let coarse = Sketch.default_of_doc doc in
  let qs = Wgen.generate { Wgen.paper_p with n_queries = 10 } (Prng.create 5) doc in
  let e = Xbuild.workload_error coarse ~truth qs in
  Alcotest.(check bool) "finite, non-negative" true (Float.is_finite e && e >= 0.0);
  Alcotest.(check (float 1e-9)) "empty workload" 0.0
    (Xbuild.workload_error coarse ~truth [])

let () =
  Alcotest.run "xbuild"
    [
      ( "construction",
        [
          Alcotest.test_case "respects budget" `Slow test_respects_budget;
          Alcotest.test_case "reduces error" `Slow test_reduces_error;
          Alcotest.test_case "on_step reporting" `Slow test_on_step_reporting;
          Alcotest.test_case "determinism" `Slow test_determinism;
          Alcotest.test_case "max steps" `Slow test_max_steps;
          Alcotest.test_case "workload_error helper" `Quick test_workload_error_helper;
        ] );
    ]
