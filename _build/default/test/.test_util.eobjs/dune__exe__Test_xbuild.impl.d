test/test_xbuild.ml: Alcotest Array Float Hashtbl List Printf Xtwig_datagen Xtwig_eval Xtwig_path Xtwig_sketch Xtwig_synopsis Xtwig_util Xtwig_workload
