test/test_xml.ml: Alcotest Array List Option QCheck2 QCheck_alcotest String Xtwig_fixtures Xtwig_xml
