test/test_hist.ml: Alcotest Array Float List Printf QCheck2 QCheck_alcotest Stdlib Xtwig_hist
