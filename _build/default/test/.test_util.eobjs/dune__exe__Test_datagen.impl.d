test/test_datagen.ml: Alcotest Digest Float Lazy List Printf Xtwig_datagen Xtwig_eval Xtwig_hist Xtwig_path Xtwig_sketch Xtwig_synopsis Xtwig_xml
