test/test_sketch_io.mli:
