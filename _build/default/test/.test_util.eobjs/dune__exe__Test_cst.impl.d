test/test_cst.ml: Alcotest Float List QCheck2 QCheck_alcotest Xtwig_cst Xtwig_datagen Xtwig_eval Xtwig_fixtures Xtwig_path
