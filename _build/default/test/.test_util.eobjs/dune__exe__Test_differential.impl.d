test/test_differential.ml: Alcotest Array Float Hashtbl Lazy List Printf Stdlib String Xtwig_cst Xtwig_datagen Xtwig_eval Xtwig_path Xtwig_sketch Xtwig_synopsis Xtwig_util Xtwig_workload Xtwig_xml
