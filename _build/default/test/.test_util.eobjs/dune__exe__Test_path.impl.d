test/test_path.ml: Alcotest List QCheck2 QCheck_alcotest Xtwig_path Xtwig_xml
