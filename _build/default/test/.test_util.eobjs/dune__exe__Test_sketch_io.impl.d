test/test_sketch_io.ml: Alcotest Array Filename Fun List String Sys Xtwig_datagen Xtwig_eval Xtwig_fixtures Xtwig_path Xtwig_sketch Xtwig_synopsis Xtwig_workload
