test/test_sketch.ml: Alcotest Array Float Fun List Option QCheck2 QCheck_alcotest Xtwig_datagen Xtwig_fixtures Xtwig_hist Xtwig_path Xtwig_sketch Xtwig_synopsis Xtwig_xml
