test/test_eval.ml: Alcotest Array List QCheck2 QCheck_alcotest Xtwig_eval Xtwig_fixtures Xtwig_path Xtwig_xml
