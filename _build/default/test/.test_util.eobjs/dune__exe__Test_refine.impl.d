test/test_refine.ml: Alcotest Array Float List Printf QCheck2 QCheck_alcotest String Xtwig_datagen Xtwig_eval Xtwig_fixtures Xtwig_hist Xtwig_path Xtwig_sketch Xtwig_synopsis Xtwig_util Xtwig_xml
