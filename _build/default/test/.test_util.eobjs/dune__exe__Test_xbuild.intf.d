test/test_xbuild.mli:
