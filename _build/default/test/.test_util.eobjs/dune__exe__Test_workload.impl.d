test/test_workload.ml: Alcotest Array List QCheck2 QCheck_alcotest Stdlib Xtwig_datagen Xtwig_eval Xtwig_path Xtwig_util Xtwig_workload Xtwig_xml
