test/test_hist.mli:
