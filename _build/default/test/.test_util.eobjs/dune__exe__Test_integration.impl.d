test/test_integration.ml: Alcotest Array Filename Fun Hashtbl List Printf Sys Xtwig_cst Xtwig_datagen Xtwig_eval Xtwig_path Xtwig_sketch Xtwig_synopsis Xtwig_util Xtwig_workload Xtwig_xml
