test/test_synopsis.ml: Alcotest Array List Option Printf QCheck2 QCheck_alcotest Xtwig_datagen Xtwig_fixtures Xtwig_synopsis Xtwig_xml
