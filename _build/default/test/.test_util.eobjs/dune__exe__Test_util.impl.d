test/test_util.ml: Alcotest Array Float Fun Xtwig_util
