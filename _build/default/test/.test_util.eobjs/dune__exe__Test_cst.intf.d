test/test_cst.mli:
