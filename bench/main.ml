(* Reproduction benchmark harness: regenerates every table and figure
   of the paper's evaluation (Section 6) plus ablations and bechamel
   micro-benchmarks. See EXPERIMENTS.md for the paper-vs-measured
   record produced from this output.

   Usage: main.exe
   [table1|table2|fig9a|fig9b|fig9c|singlepath|ablation|micro|xbuild|
    xbuild-par|estimate-batch|parallel|fault-audit|ingest|all]
   [--trace FILE]
   (default: all). [xbuild] times one full greedy construction and
   writes its wall time, steps/sec and reuse/cache counters to
   BENCH_xbuild.json. [ingest] times the streaming parser against the
   retained PR-8 parser and Sketch.apply_delta against a full
   re-XBUILD, runs the delta differential, and writes
   BENCH_ingest.json (exits 1 on any mismatch or throughput-floor
   breach). [parallel] (= xbuild-par + estimate-batch) times
   pooled candidate scoring against sequential — checking the two
   synopses are byte-identical — and Engine batch throughput, and
   writes BENCH_parallel.json; XTWIG_JOBS sets the domain count
   (default 4). [fault-audit] drives a 200-query batch under a 1%
   chaos scenario (XTWIG_FAULT_SPEC overrides) and writes the
   injected/retried/degraded counts to BENCH_fault.json.

   Every mode additionally writes the run's metrics delta to
   BENCH_metrics.json, and [--trace FILE] records a Chrome
   trace-event JSON of the run (open in Perfetto / chrome://tracing;
   see DESIGN.md "Observability"). *)

open Harness
module Path_printer = Xtwig_path.Path_printer
module Spath = Xtwig_sketch.Spath
module Trace = Xtwig_obs.Trace
module Accuracy = Xtwig_obs.Accuracy

let eval_queries_n =
  match Sys.getenv_opt "XTWIG_EVAL_QUERIES" with
  | Some s -> (try int_of_string s with _ -> 500)
  | None -> 500

(* ------------------------------------------------------------------ *)
(* Table 1: dataset characteristics                                    *)

let table1 () =
  print_header "Table 1. Data Sets";
  print_row "%-8s %14s %14s %22s" "" "Element Count" "Text Size (MB)"
    "Coarsest Synopsis (KB)";
  List.iter
    (fun d ->
      let doc = Lazy.force d.doc in
      let coarse = Sketch.default_of_doc doc in
      print_row "%-8s %14d %14.2f %22.2f" d.name (Doc.size doc)
        (float_of_int (Xtwig_xml.Xml_writer.text_size doc) /. 1_048_576.0)
        (kb (Sketch.size_bytes coarse)))
    datasets

(* ------------------------------------------------------------------ *)
(* Table 2: workload characteristics                                   *)

let workload_for doc spec seed = Wgen.generate spec (Prng.create seed) doc

let table2 () =
  print_header "Table 2. Workload Characteristics";
  print_row "%-8s %6s %14s %12s" "" "Kind" "Avg. Result" "Avg. Fanout";
  List.iter
    (fun d ->
      let doc = Lazy.force d.doc in
      let kinds =
        if d.name = "SProt" then [ ("P", Wgen.paper_p) ]
        else [ ("P", Wgen.paper_p); ("P+V", Wgen.paper_pv) ]
      in
      List.iter
        (fun (kind, spec) ->
          let qs = workload_for doc { spec with Wgen.n_queries = 1000 } 17 in
          let avg_card, avg_fanout = Wgen.characteristics doc qs in
          print_row "%-8s %6s %14.0f %12.2f" d.name kind avg_card avg_fanout)
        kinds)
    datasets

(* ------------------------------------------------------------------ *)
(* Figure 9 (a,b): error vs synopsis size                              *)

let figure_curves ~title ~spec names =
  print_header title;
  print_row "%-8s %12s %10s" "dataset" "size (KB)" "avg error";
  List.iter
    (fun name ->
      let d = dataset name in
      let doc = Lazy.force d.doc in
      log "%s: generating evaluation workload (%d queries)" d.name eval_queries_n;
      let eval_queries =
        workload_for doc { spec with Wgen.n_queries = eval_queries_n } 101
      in
      let scoring = { spec with Wgen.n_queries = 14 } in
      let t0 = now () in
      let curve, _ =
        error_curve ~seed:7 ~scoring_spec:scoring ~eval_queries
          ~grid:(grid_of doc default_multiples) doc
      in
      log "%s curve done in %.0fs" d.name (now () -. t0);
      List.iter
        (fun p -> print_row "%-8s %12.2f %10.3f" d.name (kb p.size_bytes) p.error)
        curve)
    names

let fig9a () =
  figure_curves
    ~title:"Figure 9(a). Branching Predicates (P workload): error vs size"
    ~spec:Wgen.paper_p [ "IMDB"; "XMark" ]

let fig9b () =
  figure_curves
    ~title:"Figure 9(b). Branching and Value Predicates (P+V): error vs size"
    ~spec:Wgen.paper_pv [ "IMDB"; "XMark" ]

(* ------------------------------------------------------------------ *)
(* Figure 9 (c): CST vs XSKETCH error ratio                            *)

let fig9c () =
  print_header "Figure 9(c). Simple Paths: CST error / XSKETCH error vs size";
  print_row "%-8s %12s %10s %10s %10s %9s" "dataset" "size (KB)" "err CST"
    "err XSK" "ratio" "outliers";
  List.iter
    (fun d ->
      let doc = Lazy.force d.doc in
      let truth = truth_oracle doc in
      let eval_queries =
        workload_for doc { Wgen.simple_paths with n_queries = eval_queries_n } 103
      in
      let truths = truths_of truth eval_queries in
      let scoring = { Wgen.simple_paths with Wgen.n_queries = 14 } in
      let t0 = now () in
      let curve_points = ref [] in
      let grid = grid_of doc default_multiples in
      let _, _ =
        let remaining = ref (List.sort compare grid) in
        let take sk size =
          match !remaining with
          | g :: rest when size >= g ->
              remaining := rest;
              curve_points := (size, sk) :: !curve_points
          | _ -> ()
        in
        let coarse = Sketch.default_of_doc doc in
        take coarse (Sketch.size_bytes coarse);
        let workload prng ~focus = Wgen.generate ~focus scoring prng doc in
        let final =
          Xbuild.build ~seed:7 ~candidates:8 ~max_steps:700 ~workload ~truth
            ~budget:(List.fold_left Stdlib.max 0 grid)
            ~on_step:(fun sk info -> take sk info.Xtwig_sketch.Xbuild.size)
            doc
        in
        ((), ignore final)
      in
      log "%s builds done in %.0fs" d.name (now () -. t0);
      List.iter
        (fun (size, sk) ->
          let cst = Cst.build ~budget_bytes:size doc in
          let cst_est =
            Array.of_list (List.map (fun q -> Cst.estimate cst q) eval_queries)
          in
          let xsk_est = estimates_of sk eval_queries in
          (* the paper excludes CST outliers (>1000% error) to keep the
             ratio meaningful; we do the same and report how many *)
          let m_cst = EM.evaluate ~truths ~estimates:cst_est in
          let keep = Array.map (fun e -> e <= 10.0) m_cst.EM.per_query in
          let filter arr =
            Array.of_list
              (List.filteri
                 (fun i _ -> keep.(i))
                 (Array.to_list arr))
          in
          let truths_f = filter truths in
          let e_cst =
            EM.average_error ~truths:truths_f ~estimates:(filter cst_est)
          in
          let e_xsk =
            EM.average_error ~truths:truths_f ~estimates:(filter xsk_est)
          in
          let outliers =
            Array.length keep - Array.fold_left (fun a k -> if k then a + 1 else a) 0 keep
          in
          print_row "%-8s %12.2f %10.3f %10.3f %10.2f %9d" d.name (kb size) e_cst
            e_xsk
            (e_cst /. Stdlib.max 1e-6 e_xsk)
            outliers)
        (List.rev !curve_points))
    datasets

(* ------------------------------------------------------------------ *)
(* Single-path comparison: Twig XSKETCH vs Structural XSKETCH          *)

(* single XPath expressions with branching and value predicates: the
   structure-only part is pinned exactly by the stored edge counts in
   both models, so the interesting differences come from predicates *)
let single_path_spec =
  {
    Wgen.paper_p with
    Wgen.n_queries = eval_queries_n;
    min_nodes = 1;
    max_nodes = 1;
    branch_prob = 0.35;
    value_pred_frac = 0.5;
    max_path_steps = 3;
    leaf_roots = true;
  }

let singlepath () =
  print_header
    "Single XPath expressions: Twig XSKETCH vs Structural (single-path) XSKETCH";
  print_row "%-8s %12s %12s %12s" "dataset" "size (KB)" "err twig" "err struct";
  List.iter
    (fun d ->
      let doc = Lazy.force d.doc in
      let truth = truth_oracle doc in
      let eval_queries = workload_for doc single_path_spec 107 in
      let truths = truths_of truth eval_queries in
      let scoring = { single_path_spec with Wgen.n_queries = 14 } in
      let workload prng ~focus = Wgen.generate ~focus scoring prng doc in
      let budget = List.nth (grid_of doc [ 8.0 ]) 0 in
      let sk =
        Xbuild.build ~seed:7 ~candidates:8 ~max_steps:250 ~workload ~truth ~budget
          doc
      in
      let e_twig =
        EM.average_error ~truths ~estimates:(estimates_of sk eval_queries)
      in
      let stripped = Spath.strip_edge_hists sk in
      let e_struct =
        EM.average_error ~truths ~estimates:(estimates_of stripped eval_queries)
      in
      print_row "%-8s %12.2f %12.3f %12.3f" d.name
        (kb (Sketch.size_bytes sk))
        e_twig e_struct)
    datasets

(* ------------------------------------------------------------------ *)
(* Negative workloads (Section 6.1, in-text claim)                     *)

let negative () =
  print_header "Negative workloads: estimates on zero-selectivity queries";
  print_row "%-8s %10s %14s %14s" "dataset" "queries" "mean estimate"
    "max estimate";
  List.iter
    (fun d ->
      let doc = Lazy.force d.doc in
      let negs =
        Wgen.generate_negative
          { Wgen.paper_p with Wgen.n_queries = 200 }
          (Prng.create 113) doc
      in
      let coarse = Sketch.default_of_doc doc in
      let ests = List.map (fun q -> Est.estimate coarse q) negs in
      print_row "%-8s %10d %14.3f %14.3f" d.name (List.length negs)
        (Xtwig_util.Stats.mean (Array.of_list ests))
        (List.fold_left Stdlib.max 0.0 ests))
    datasets

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablation () =
  print_header "Ablation 1. Edge-histogram budget on the IMDB movie node";
  print_row "%-10s %12s" "buckets" "avg error";
  let doc = Lazy.force (dataset "imdb").doc in
  let truth = truth_oracle doc in
  let eval_queries =
    workload_for doc { Wgen.paper_p with Wgen.n_queries = 200 } 109
  in
  let truths = truths_of truth eval_queries in
  let syn = Xtwig_synopsis.Graph_synopsis.label_split doc in
  List.iter
    (fun budget ->
      let sk = Sketch.coarsest ~ebudget:budget syn in
      let e = EM.average_error ~truths ~estimates:(estimates_of sk eval_queries) in
      print_row "%-10d %12.3f" budget e)
    [ 1; 2; 4; 8; 16; 32 ];
  print_header "Ablation 2. Cluster histogram vs Haar wavelet (1-d compression)";
  print_row "%-10s %16s %16s" "budget" "hist L1 error" "wavelet L1 error";
  (* the actor-count distribution of IMDB movies, as a frequency vector *)
  let sk = Sketch.coarsest syn in
  let movie = List.hd (Xtwig_synopsis.Graph_synopsis.nodes_with_label syn "movie") in
  let actor = List.hd (Xtwig_synopsis.Graph_synopsis.nodes_with_label syn "actor") in
  let dist =
    Sketch.distribution sk movie
      [| { Xtwig_sketch.Sketch.src = movie; dst = actor; kind = Forward } |]
  in
  let max_count =
    Xtwig_hist.Sparse_dist.fold dist ~init:0 ~f:(fun a v _ -> Stdlib.max a v.(0))
  in
  let freq = Array.make (max_count + 1) 0.0 in
  Xtwig_hist.Sparse_dist.fold dist ~init:() ~f:(fun () v f -> freq.(v.(0)) <- f);
  List.iter
    (fun budget ->
      (* same byte budget for both: hist bucket = 12B, coeff = 8B *)
      let bytes = budget * 12 in
      let h = Xtwig_hist.Edge_hist.build ~budget dist in
      let hist_err =
        (* L1 distance between true frequencies and bucket-uniform mass *)
        let approx = Array.make (max_count + 1) 0.0 in
        List.iter
          (fun (b : Xtwig_hist.Edge_hist.bucket) ->
            let span = b.hi.(0) - b.lo.(0) + 1 in
            for c = b.lo.(0) to b.hi.(0) do
              approx.(c) <- approx.(c) +. (b.frac /. float_of_int span)
            done)
          (Xtwig_hist.Edge_hist.buckets h);
        Array.fold_left ( +. ) 0.0
          (Array.mapi (fun i f -> Float.abs (f -. approx.(i))) freq)
      in
      let w = Xtwig_hist.Wavelet.build ~budget:(bytes / 8) freq in
      let rec_ = Xtwig_hist.Wavelet.reconstruct w in
      let wav_err =
        Array.fold_left ( +. ) 0.0
          (Array.mapi (fun i f -> Float.abs (f -. rec_.(i))) freq)
      in
      print_row "%-10d %16.4f %16.4f" budget hist_err wav_err)
    [ 2; 4; 8; 16 ];
  print_header "Ablation 3. Estimation assumptions (IMDB, 200 P queries)";
  print_row "%-44s %10s" "configuration" "avg error";
  let full_sk =
    (* full eligible scope, exact histograms: upper bound of the model *)
    let groupings =
      Array.init (Xtwig_synopsis.Graph_synopsis.node_count syn) (fun n ->
          match Xtwig_synopsis.Tsn.scope_edges syn n with
          | [] -> []
          | edges ->
              [
                List.map
                  (fun (src, dst) ->
                    let kind =
                      if src = n then Xtwig_sketch.Sketch.Forward
                      else Xtwig_sketch.Sketch.Backward
                    in
                    { Xtwig_sketch.Sketch.src; dst; kind })
                  edges;
              ])
    in
    Sketch.exact_for_scopes syn groupings
  in
  let forward_only_sk =
    (* the paper's prototype restriction: forward counts only, and one
       histogram per edge (full independence across edges) *)
    Sketch.coarsest ~ebudget:64 syn
  in
  let none_sk = Spath.strip_edge_hists forward_only_sk in
  List.iter
    (fun (name, sk) ->
      let e = EM.average_error ~truths ~estimates:(estimates_of sk eval_queries) in
      print_row "%-44s %10.3f" name e)
    [
      ("full scope, exact joint histograms", full_sk);
      ("forward-only 1-d histograms (prototype)", forward_only_sk);
      ("no edge histograms (structural only)", none_sk);
    ]

(* ------------------------------------------------------------------ *)
(* XBUILD inner-loop benchmark: wall time, steps/sec and the reuse /
   cache counters of one full greedy construction, recorded to
   BENCH_xbuild.json so the perf trajectory is tracked across PRs.    *)

let xbuild_bench () =
  print_header "XBUILD inner-loop benchmark (IMDB)";
  let doc = Lazy.force (dataset "imdb").doc in
  let truth = truth_oracle doc in
  let scoring = { Wgen.paper_p with Wgen.n_queries = 14 } in
  let workload prng ~focus = Wgen.generate ~focus scoring prng doc in
  let coarse_bytes = Sketch.size_bytes (Sketch.default_of_doc doc) in
  let budget = coarse_bytes * 16 in
  let max_steps = 300 and seed = 7 and candidates = 8 in
  (* resolve the dataset and force the generators out of the timing *)
  let m0 = Metrics.snapshot () in
  let steps = ref 0 and last_err = ref Float.nan in
  let t0 = now () in
  let final =
    Xbuild.build ~seed ~candidates ~max_steps ~workload ~truth ~budget
      ~on_step:(fun _ info ->
        incr steps;
        last_err := info.Xtwig_sketch.Xbuild.workload_error)
      doc
  in
  let wall = now () -. t0 in
  let steps_per_s = float_of_int !steps /. Stdlib.max 1e-9 wall in
  let counters = counters_of (Metrics.diff m0 (Metrics.snapshot ())) in
  print_row "%-28s %12.3f" "wall time (s)" wall;
  print_row "%-28s %12d" "steps" !steps;
  print_row "%-28s %12.2f" "steps/s" steps_per_s;
  print_row "%-28s %12d" "final size (bytes)" (Sketch.size_bytes final);
  List.iter (fun (n, v) -> print_row "%-40s %12d" n v) counters;
  (* perf gate: with the repatch-first cache, compilation must cost
     less total time than plan execution, and repatches must dominate
     compiles — a regression on either means candidate scoring went
     back to recompiling from scratch *)
  let cval n = Option.value ~default:0 (List.assoc_opt n counters) in
  let gate_time = cval "plan.compile_ns" < cval "plan.run_ns" in
  let gate_reuse = cval "plan.repatches" >= cval "plan.compiles" in
  print_row "%-40s %12s" "gate: plan.compile_ns < plan.run_ns"
    (if gate_time then "PASS" else "FAIL");
  print_row "%-40s %12s" "gate: plan.repatches >= plan.compiles"
    (if gate_reuse then "PASS" else "FAIL");
  if not (gate_time && gate_reuse) then
    log "ERROR: plan-cache perf gate failed (compile_ns=%d run_ns=%d \
         compiles=%d repatches=%d)"
      (cval "plan.compile_ns") (cval "plan.run_ns") (cval "plan.compiles")
      (cval "plan.repatches");
  (* accuracy telemetry on a held-out workload: absolute and relative
     error stream into the Accuracy histograms, reported as p50/p90/p99
     (the build's own scoring error above is a mean over 14 queries;
     percentiles need the wider evaluation set) *)
  let eval_qs =
    Wgen.generate { Wgen.paper_p with Wgen.n_queries = 200 } (Prng.create 101)
      doc
  in
  let truths = truths_of truth eval_qs in
  let sanity = EM.sanity_bound truths in
  let acc = Accuracy.create ~sanity ~name:"bench.xbuild" () in
  List.iteri
    (fun i q -> Accuracy.observe acc ~truth:truths.(i) ~estimate:(Est.estimate final q))
    eval_qs;
  print_row "%s" (Accuracy.report acc);
  let p q = Accuracy.percentile acc q in
  let oc = open_out "BENCH_xbuild.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"xbuild\",\n";
  fprint_provenance oc;
  Printf.fprintf oc "  \"dataset\": \"IMDB\",\n";
  Printf.fprintf oc "  \"scale\": %g,\n" scale;
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  Printf.fprintf oc "  \"candidates\": %d,\n" candidates;
  Printf.fprintf oc "  \"max_steps\": %d,\n" max_steps;
  Printf.fprintf oc "  \"budget_bytes\": %d,\n" budget;
  Printf.fprintf oc "  \"wall_s\": %.3f,\n" wall;
  Printf.fprintf oc "  \"steps\": %d,\n" !steps;
  Printf.fprintf oc "  \"steps_per_s\": %.3f,\n" steps_per_s;
  Printf.fprintf oc "  \"final_size_bytes\": %d,\n" (Sketch.size_bytes final);
  (* Metrics.json_number: an empty accuracy stream yields NaN
     percentiles, which must become null, not bare NaN tokens *)
  Printf.fprintf oc "  \"final_workload_error\": %s,\n"
    (Metrics.json_number !last_err);
  Printf.fprintf oc "  \"eval_queries\": %d,\n" (List.length eval_qs);
  Printf.fprintf oc "  \"rel_error_p50\": %s,\n" (Metrics.json_number (p 50.0));
  Printf.fprintf oc "  \"rel_error_p90\": %s,\n" (Metrics.json_number (p 90.0));
  Printf.fprintf oc "  \"rel_error_p99\": %s,\n" (Metrics.json_number (p 99.0));
  Printf.fprintf oc "  \"gate_compile_lt_run\": %b,\n" gate_time;
  Printf.fprintf oc "  \"gate_repatches_ge_compiles\": %b,\n" gate_reuse;
  Printf.fprintf oc "  \"counters\": {\n";
  List.iteri
    (fun i (n, v) ->
      Printf.fprintf oc "    \"%s\": %d%s\n" n v
        (if i = List.length counters - 1 then "" else ","))
    counters;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  log "wrote BENCH_xbuild.json"

(* ------------------------------------------------------------------ *)
(* Parallel XBUILD + concurrent estimation benchmark: sequential vs
   pooled candidate scoring (with a byte-identity check on the
   resulting synopsis) and Engine batch throughput, recorded to
   BENCH_parallel.json.                                                *)

module Pool = Xtwig_util.Pool
module Sketch_io = Xtwig_sketch.Sketch_io
module Engine = Xtwig_engine.Engine

let bench_jobs =
  match Sys.getenv_opt "XTWIG_JOBS" with
  | Some s -> (try Stdlib.max 1 (int_of_string s) with _ -> 4)
  | None -> 4

type par_results = {
  mutable xb_wall_seq : float;
  mutable xb_wall_par : float;
  mutable xb_identical : bool;
  mutable eb_queries : int;
  mutable eb_wall_seq : float;
  mutable eb_wall_par : float;
  mutable eb_identical : bool;
  mutable eb_timeouts : int;
}

let par_results =
  {
    xb_wall_seq = Float.nan;
    xb_wall_par = Float.nan;
    xb_identical = false;
    eb_queries = 0;
    eb_wall_seq = Float.nan;
    eb_wall_par = Float.nan;
    eb_identical = false;
    eb_timeouts = 0;
  }

let par_budget doc = Sketch.size_bytes (Sketch.default_of_doc doc) * 16

let par_build ?pool doc =
  let truth = truth_oracle doc in
  let scoring = { Wgen.paper_p with Wgen.n_queries = 14 } in
  let workload prng ~focus = Wgen.generate ~focus scoring prng doc in
  Xbuild.build ?pool ~seed:7 ~candidates:8 ~max_steps:300 ~workload ~truth
    ~budget:(par_budget doc) doc

let write_parallel_json () =
  let r = par_results in
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"parallel\",\n";
  fprint_provenance oc;
  Printf.fprintf oc "  \"dataset\": \"IMDB\",\n";
  Printf.fprintf oc "  \"scale\": %g,\n" scale;
  Printf.fprintf oc "  \"jobs\": %d,\n" bench_jobs;
  Printf.fprintf oc "  \"xbuild\": {\n";
  Printf.fprintf oc "    \"wall_seq_s\": %.3f,\n" r.xb_wall_seq;
  Printf.fprintf oc "    \"wall_par_s\": %.3f,\n" r.xb_wall_par;
  Printf.fprintf oc "    \"speedup\": %.3f,\n" (r.xb_wall_seq /. r.xb_wall_par);
  Printf.fprintf oc "    \"synopsis_identical\": %b\n" r.xb_identical;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"estimate_batch\": {\n";
  Printf.fprintf oc "    \"queries\": %d,\n" r.eb_queries;
  Printf.fprintf oc "    \"wall_seq_s\": %.3f,\n" r.eb_wall_seq;
  Printf.fprintf oc "    \"wall_par_s\": %.3f,\n" r.eb_wall_par;
  Printf.fprintf oc "    \"queries_per_s_par\": %.1f,\n"
    (float_of_int r.eb_queries /. Stdlib.max 1e-9 r.eb_wall_par);
  Printf.fprintf oc "    \"answers_identical\": %b,\n" r.eb_identical;
  Printf.fprintf oc "    \"timeouts\": %d\n" r.eb_timeouts;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  log "wrote BENCH_parallel.json"

let xbuild_par_bench () =
  print_header "Parallel XBUILD benchmark (IMDB)";
  let doc = Lazy.force (dataset "imdb").doc in
  log "available cores: %d, worker domains: %d (XTWIG_JOBS)"
    (Domain.recommended_domain_count ())
    bench_jobs;
  let t0 = now () in
  let seq = par_build doc in
  let wall_seq = now () -. t0 in
  let t0 = now () in
  let par = Pool.with_pool ~domains:bench_jobs (fun p -> par_build ~pool:p doc) in
  let wall_par = now () -. t0 in
  let identical =
    String.equal (Sketch_io.to_string seq) (Sketch_io.to_string par)
  in
  par_results.xb_wall_seq <- wall_seq;
  par_results.xb_wall_par <- wall_par;
  par_results.xb_identical <- identical;
  print_row "%-28s %12.3f" "sequential wall (s)" wall_seq;
  print_row "%-28s %12.3f" "parallel wall (s)" wall_par;
  print_row "%-28s %12.2f" "speedup" (wall_seq /. Stdlib.max 1e-9 wall_par);
  print_row "%-28s %12b" "synopsis byte-identical" identical;
  if Domain.recommended_domain_count () < 2 then
    log
      "NOTE: this machine exposes a single core; the parallel path is \
       exercised for correctness but cannot show wall-clock speedup here.";
  if not identical then log "ERROR: parallel synopsis differs from sequential!"

let estimate_batch_bench () =
  print_header "Concurrent estimation engine benchmark (IMDB)";
  let doc = Lazy.force (dataset "imdb").doc in
  let sk = par_build doc in
  let qs =
    Wgen.generate { Wgen.paper_p with Wgen.n_queries = 200 } (Prng.create 99) doc
  in
  let run jobs =
    match Engine.of_sketch ~jobs sk with
    | Error e -> failwith (Xtwig_util.Xerror.to_string e)
    | Ok eng ->
        Fun.protect
          ~finally:(fun () -> Engine.close eng)
          (fun () ->
            let t0 = now () in
            match Engine.estimate_batch eng qs with
            | Error e -> failwith (Xtwig_util.Xerror.to_string e)
            | Ok answers ->
                let wall = now () -. t0 in
                (wall, answers, Engine.stats eng))
  in
  let wall_seq, ans_seq, _ = run 1 in
  let wall_par, ans_par, st = run bench_jobs in
  let identical =
    List.for_all2
      (fun (a : Engine.answer) (b : Engine.answer) ->
        Float.equal a.Engine.estimate b.Engine.estimate)
      ans_seq ans_par
  in
  par_results.eb_queries <- List.length qs;
  par_results.eb_wall_seq <- wall_seq;
  par_results.eb_wall_par <- wall_par;
  par_results.eb_identical <- identical;
  par_results.eb_timeouts <- st.Engine.timeouts;
  print_row "%-28s %12d" "queries" (List.length qs);
  print_row "%-28s %12.3f" "sequential wall (s)" wall_seq;
  print_row "%-28s %12.3f" "parallel wall (s)" wall_par;
  print_row "%-28s %12.1f" "queries/s (parallel)"
    (float_of_int (List.length qs) /. Stdlib.max 1e-9 wall_par);
  print_row "%-28s %12b" "answers identical" identical;
  print_row "%-28s %12d" "timeouts" st.Engine.timeouts;
  if not identical then log "ERROR: parallel answers differ from sequential!"

(* ------------------------------------------------------------------ *)
(* Fault audit: a 1%-everything chaos scenario over a 200-query Engine
   batch. The engine must never raise: every query yields an answer,
   degraded at worst, and the run records how many faults fired, how
   many queries retried and how many degraded to BENCH_fault.json.
   XTWIG_FAULT_SPEC overrides the canned scenario.                     *)

module Fault = Xtwig_fault.Fault

let fault_audit () =
  print_header "Fault audit (IMDB, 200-query batch under injection)";
  let doc = Lazy.force (dataset "imdb").doc in
  let sk = par_build doc in
  let qs =
    Wgen.generate { Wgen.paper_p with Wgen.n_queries = 200 } (Prng.create 99) doc
  in
  let sp =
    let canned =
      "seed=7;engine.query:p0.01;plan.fill:p0.01;embed.fill:p0.01;pool.task:p0.01"
    in
    match Fault.env_spec () with
    | Ok (Some sp) -> sp
    | Error e -> failwith ("XTWIG_FAULT_SPEC: " ^ e)
    | Ok None -> (
        match Fault.parse_spec canned with
        | Ok sp -> sp
        | Error e -> failwith e)
  in
  log "scenario: %s" (Fault.spec_to_string sp);
  Fault.install sp;
  let outcome =
    Fun.protect ~finally:Fault.disable @@ fun () ->
    match Engine.of_sketch ~jobs:bench_jobs sk with
    | Error e -> Error (Xtwig_util.Xerror.to_string e)
    | Ok eng -> (
        Fun.protect
          ~finally:(fun () -> Engine.close eng)
          (fun () ->
            match Engine.estimate_batch eng qs with
            | Ok answers -> Ok (answers, Engine.stats eng, Fault.injected_count ())
            | Error e -> Error (Xtwig_util.Xerror.to_string e)
            | exception e ->
                Error ("UNCAUGHT " ^ Printexc.to_string e)))
  in
  let queries = List.length qs in
  let injected, retried_queries, retries_total, degraded, uncaught, err =
    match outcome with
    | Ok (answers, st, injected) ->
        let retried =
          List.length
            (List.filter (fun (a : Engine.answer) -> a.Engine.retries > 0) answers)
        in
        let degraded =
          List.length
            (List.filter (fun (a : Engine.answer) -> a.Engine.fallback) answers)
        in
        (injected, retried, st.Engine.retries, degraded, false, "")
    | Error msg ->
        let uncaught = String.length msg >= 8 && String.sub msg 0 8 = "UNCAUGHT" in
        (Fault.injected_count (), 0, 0, queries, uncaught, msg)
  in
  let served = float_of_int (queries - degraded) /. float_of_int queries *. 100.0 in
  print_row "%-28s %12d" "queries" queries;
  print_row "%-28s %12d" "faults injected" injected;
  print_row "%-28s %12d" "queries retried" retried_queries;
  print_row "%-28s %12d" "retries total" retries_total;
  print_row "%-28s %12d" "degraded (fallback)" degraded;
  print_row "%-28s %11.1f%%" "served at full fidelity" served;
  if err <> "" then log "ERROR: batch failed: %s" err;
  if uncaught then log "ERROR: engine let an exception escape!";
  let oc = open_out "BENCH_fault.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"fault-audit\",\n";
  fprint_provenance oc;
  Printf.fprintf oc "  \"dataset\": \"IMDB\",\n";
  Printf.fprintf oc "  \"scale\": %g,\n" scale;
  Printf.fprintf oc "  \"jobs\": %d,\n" bench_jobs;
  Printf.fprintf oc "  \"spec\": %S,\n" (Fault.spec_to_string sp);
  Printf.fprintf oc "  \"queries\": %d,\n" queries;
  Printf.fprintf oc "  \"injected\": %d,\n" injected;
  Printf.fprintf oc "  \"retried_queries\": %d,\n" retried_queries;
  Printf.fprintf oc "  \"retries_total\": %d,\n" retries_total;
  Printf.fprintf oc "  \"degraded\": %d,\n" degraded;
  Printf.fprintf oc "  \"served_full_fidelity_pct\": %.1f,\n" served;
  Printf.fprintf oc "  \"uncaught_exceptions\": %b\n" uncaught;
  Printf.fprintf oc "}\n";
  close_out oc;
  log "wrote BENCH_fault.json";
  if uncaught then exit 1

(* ------------------------------------------------------------------ *)
(* Plan-cache scaling benchmark: run the full XBUILD construction once
   per worker-domain count and record, for each jobs value, the wall
   time plus the plan cache's compile / repatch / run breakdown, so the
   efficiency curve and the repatch-vs-compile balance are tracked
   across PRs in BENCH_scaling.json. Every run goes through a pool
   (jobs = 1 exercises the inline bypass) and must produce a synopsis
   byte-identical to the jobs = 1 baseline.                            *)

let scaling_jobs =
  match Sys.getenv_opt "XTWIG_SCALING_JOBS" with
  | Some s ->
      let js =
        List.filter_map
          (fun p ->
            match int_of_string_opt (String.trim p) with
            | Some j when j >= 1 -> Some j
            | _ -> None)
          (String.split_on_char ',' s)
      in
      if js = [] then [ 1; 2; 4; 8 ] else js
  | None -> [ 1; 2; 4; 8 ]

(* the counter subset that matters for the scaling story, in report
   order; anything absent in a run's delta reads as 0 *)
let scaling_keys =
  [
    "plan.compiles";
    "plan.repatches";
    "plan.cache_hits";
    "plan.cache_misses";
    "plan.fallback_reuses";
    "plan.invalidation{cause=payload}";
    "plan.invalidation{cause=structure}";
    "plan.invalidation{cause=evict}";
    "plan.compile_ns";
    "plan.repatch_ns";
    "plan.run_ns";
  ]

let scaling_bench () =
  print_header "Plan-cache scaling benchmark (IMDB XBUILD, jobs sweep)";
  let doc = Lazy.force (dataset "imdb").doc in
  let cores = Domain.recommended_domain_count () in
  log "available cores: %d, sweeping jobs = %s" cores
    (String.concat ", " (List.map string_of_int scaling_jobs));
  if cores < 2 then
    log
      "NOTE: this machine exposes a single core; jobs > 1 measures \
       scheduling overhead, not speedup (see EXPERIMENTS.md).";
  let run_one jobs =
    let m0 = Metrics.snapshot () in
    let t0 = now () in
    let sk = Pool.with_pool ~domains:jobs (fun p -> par_build ~pool:p doc) in
    let wall = now () -. t0 in
    let counters = counters_of (Metrics.diff m0 (Metrics.snapshot ())) in
    let cval n = Option.value ~default:0 (List.assoc_opt n counters) in
    (wall, Sketch_io.to_string sk, List.map (fun k -> (k, cval k)) scaling_keys)
  in
  let runs = List.map (fun jobs -> (jobs, run_one jobs)) scaling_jobs in
  let base_wall, base_bytes =
    match runs with
    | (_, (w, b, _)) :: _ -> (w, b)
    | [] -> (Float.nan, "")
  in
  print_row "%4s %9s %8s %11s %11s %11s %9s %9s" "jobs" "wall(s)" "speedup"
    "compile(ms)" "repatch(ms)" "run(ms)" "compiles" "repatches";
  let all_identical = ref true in
  List.iter
    (fun (jobs, (wall, bytes, cs)) ->
      let cval k = List.assoc k cs in
      let ms k = float_of_int (cval k) /. 1e6 in
      if not (String.equal bytes base_bytes) then all_identical := false;
      print_row "%4d %9.3f %8.2f %11.1f %11.1f %11.1f %9d %9d" jobs wall
        (base_wall /. Stdlib.max 1e-9 wall)
        (ms "plan.compile_ns") (ms "plan.repatch_ns") (ms "plan.run_ns")
        (cval "plan.compiles") (cval "plan.repatches"))
    runs;
  print_row "%-28s %12b" "synopses byte-identical" !all_identical;
  if not !all_identical then
    log "ERROR: synopsis differs across jobs values!";
  let oc = open_out "BENCH_scaling.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"scaling\",\n";
  fprint_provenance oc;
  Printf.fprintf oc "  \"dataset\": \"IMDB\",\n";
  Printf.fprintf oc "  \"scale\": %g,\n" scale;
  Printf.fprintf oc "  \"seed\": 7,\n";
  Printf.fprintf oc "  \"candidates\": 8,\n";
  Printf.fprintf oc "  \"max_steps\": 300,\n";
  Printf.fprintf oc "  \"cores\": %d,\n" cores;
  Printf.fprintf oc "  \"synopses_identical\": %b,\n" !all_identical;
  Printf.fprintf oc "  \"runs\": [\n";
  List.iteri
    (fun i (jobs, (wall, _, cs)) ->
      let speedup = base_wall /. Stdlib.max 1e-9 wall in
      Printf.fprintf oc "    {\n";
      Printf.fprintf oc "      \"jobs\": %d,\n" jobs;
      Printf.fprintf oc "      \"wall_s\": %.3f,\n" wall;
      Printf.fprintf oc "      \"speedup\": %.3f,\n" speedup;
      Printf.fprintf oc "      \"efficiency\": %.3f,\n"
        (speedup /. float_of_int jobs);
      Printf.fprintf oc "      \"counters\": {\n";
      List.iteri
        (fun j (k, v) ->
          Printf.fprintf oc "        \"%s\": %d%s\n" k v
            (if j = List.length cs - 1 then "" else ","))
        cs;
      Printf.fprintf oc "      }\n";
      Printf.fprintf oc "    }%s\n" (if i = List.length runs - 1 then "" else ","))
    runs;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  log "wrote BENCH_scaling.json"

(* ------------------------------------------------------------------ *)
(* Streaming-ingestion benchmark: the PR-9 tentpole's evidence.

   Part 1 times the chunked SAX parser against the retained PR-8
   whole-string parser (reference_parse_string_res) on the IMDB and
   XMark texts, interleaved best-of-N, and asserts the two documents
   are traversal-identical (every tag, parent, child order and value)
   — which pins the fig9a trajectory, double-checked by comparing the
   coarsest synopses byte-for-byte.

   Part 2 times Sketch.apply_delta for a single-subtree insert and
   delete against a full re-XBUILD over the updated document, and runs
   the differential contract: delta-maintained sketch vs
   rebuild-from-scratch over the same synopsis+config must be
   byte-identical (and the reuse path must equal the no-reuse path).

   Results go to BENCH_ingest.json. Exit code 1 if any differential
   mismatches, if a traversal differs, or if the streaming throughput
   falls below XTWIG_INGEST_FLOOR_MBS (default 0 = no floor) — the CI
   ingest-smoke job gates on that exit code.                          *)

module Xml_parser = Xtwig_xml.Xml_parser
module Value = Xtwig_xml.Value

let ingest_reps =
  match Sys.getenv_opt "XTWIG_INGEST_REPS" with
  | Some s -> (try Stdlib.max 3 (int_of_string s) with _ -> 15)
  | None -> 15

let ingest_floor_mbs =
  match Sys.getenv_opt "XTWIG_INGEST_FLOOR_MBS" with
  | Some s -> (try float_of_string s with _ -> 0.0)
  | None -> 0.0

(* exhaustive structural comparison: same node numbering, tags,
   parents, child order and values *)
let docs_equal a b =
  Doc.size a = Doc.size b
  && begin
       let ok = ref true in
       for e = 0 to Doc.size a - 1 do
         if
           not
             (String.equal (Doc.tag_name a e) (Doc.tag_name b e)
             && Doc.parent a e = Doc.parent b e
             && Value.equal (Doc.value a e) (Doc.value b e)
             && Doc.children a e = Doc.children b e)
         then ok := false
       done;
       !ok
     end

type parse_run = {
  p_dataset : string;
  p_bytes : int;
  p_stream_s : float;
  p_reference_s : float;
  p_traversal_identical : bool;
  p_coarse_identical : bool;
}

let mbs bytes secs = float_of_int bytes /. 1_048_576.0 /. Stdlib.max 1e-9 secs

let ingest_parse_one name =
  let doc0 = Lazy.force (dataset name).doc in
  let xml = Xtwig_xml.Xml_writer.to_string doc0 in
  let bytes = String.length xml in
  let force = function
    | Ok d -> d
    | Error e -> failwith (Xtwig_util.Xerror.to_string e)
  in
  (* one untimed pass of each parser first (page cache, interner and
     GC warm), then interleaved best-of-N: alternating the two parsers
     inside each rep cancels slow drift out of the ratio *)
  let ds = force (Xml_parser.parse_string_res xml) in
  let dr = force (Xml_parser.reference_parse_string_res xml) in
  (* start each dataset from a compacted heap: garbage left by the
     previous dataset's reps would tax the two parsers unevenly *)
  Gc.compact ();
  let best_stream = ref Float.max_float and best_ref = ref Float.max_float in
  for _ = 1 to ingest_reps do
    let t0 = now () in
    ignore (Sys.opaque_identity (force (Xml_parser.parse_string_res xml)));
    let ts = now () -. t0 in
    let t0 = now () in
    ignore
      (Sys.opaque_identity (force (Xml_parser.reference_parse_string_res xml)));
    let tr = now () -. t0 in
    if ts < !best_stream then best_stream := ts;
    if tr < !best_ref then best_ref := tr
  done;
  (* the generators do not number nodes in document order, so the
     re-serialization, not index-wise equality, is the roundtrip
     check against the source text; the two parsers must agree
     index-wise *)
  let identical =
    docs_equal ds dr && String.equal (Xtwig_xml.Xml_writer.to_string ds) xml
  in
  let coarse_identical =
    String.equal
      (Sketch_io.to_string (Sketch.default_of_doc ds))
      (Sketch_io.to_string (Sketch.default_of_doc dr))
  in
  let r =
    {
      p_dataset = name;
      p_bytes = bytes;
      p_stream_s = !best_stream;
      p_reference_s = !best_ref;
      p_traversal_identical = identical;
      p_coarse_identical = coarse_identical;
    }
  in
  print_row "%-8s %10.2f MB %9.1f MB/s stream %9.1f MB/s reference %7.2fx %s"
    name
    (float_of_int bytes /. 1_048_576.0)
    (mbs bytes r.p_stream_s) (mbs bytes r.p_reference_s)
    (r.p_reference_s /. Stdlib.max 1e-9 r.p_stream_s)
    (if identical && coarse_identical then "identical" else "MISMATCH");
  r

type delta_run = {
  d_budget : int;
  d_xbuild_s : float;
  d_rexbuild_s : float;
  d_insert_s : float;
  d_delete_s : float;
  d_mismatches : int;
  d_kept_nodes : int;
  d_deltas : int;
}

let ingest_delta () =
  let doc = Lazy.force (dataset "imdb").doc in
  let budget = par_budget doc in
  let t0 = now () in
  let sk = par_build doc in
  let xbuild_s = now () -. t0 in
  let fragment =
    match
      Xtwig_xml.Xml_parser.parse_string_res
        "<movie><title>Delta Test</title><year>1999</year><actor>A. \
         Actor</actor><genre>drama</genre></movie>"
    with
    | Ok d -> d
    | Error e -> failwith (Xtwig_util.Xerror.to_string e)
  in
  let parent = Doc.root doc in
  let victim =
    (* a real single-subtree edit: drop one whole movie element *)
    match Doc.tag_of_string doc "movie" with
    | Some tag -> (Doc.nodes_with_tag doc tag).(0)
    | None -> failwith "IMDB document has no movie elements"
  in
  let insert = Sketch.Insert { parent; fragment } and delete = Sketch.Delete victim in
  (* apply_delta is functional, so the same base sketch serves every
     timing rep; best-of-N for the same reason as the parse loop *)
  let time_delta d =
    let best = ref Float.max_float in
    for _ = 1 to ingest_reps do
      let t0 = now () in
      ignore (Sketch.apply_delta sk d);
      let t = now () -. t0 in
      if t < !best then best := t
    done;
    !best
  in
  let insert_s = time_delta insert and delete_s = time_delta delete in
  (* differential contract, counted as mismatches (gate: zero):
     1. delta result = rebuild-from-scratch over its synopsis+config
     2. reuse path = no-reuse path *)
  let m0 = Metrics.snapshot () in
  let mismatches = ref 0 in
  let check d =
    let maintained = Sketch.apply_delta ~reuse:true sk d in
    let rebuilt =
      Sketch.build (Sketch.synopsis maintained) (Sketch.config maintained)
    in
    let no_reuse = Sketch.apply_delta ~reuse:false sk d in
    let b = Sketch_io.to_string maintained in
    if not (String.equal b (Sketch_io.to_string rebuilt)) then incr mismatches;
    if not (String.equal b (Sketch_io.to_string no_reuse)) then incr mismatches
  in
  check insert;
  check delete;
  let counters = counters_of (Metrics.diff m0 (Metrics.snapshot ())) in
  let cval n = Option.value ~default:0 (List.assoc_opt n counters) in
  (* the honest re-XBUILD comparator: a from-scratch greedy build over
     the post-insert document, same knobs as the initial build *)
  let doc' = Sketch.doc (Sketch.apply_delta sk insert) in
  let t0 = now () in
  ignore (par_build doc');
  let rexbuild_s = now () -. t0 in
  print_row "%-28s %12.3f" "initial XBUILD wall (s)" xbuild_s;
  print_row "%-28s %12.3f" "re-XBUILD wall (s)" rexbuild_s;
  print_row "%-28s %12.2f" "insert delta (ms)" (insert_s *. 1e3);
  print_row "%-28s %12.2f" "delete delta (ms)" (delete_s *. 1e3);
  print_row "%-28s %12.0fx" "speedup vs re-XBUILD"
    (rexbuild_s /. Stdlib.max 1e-9 (Stdlib.max insert_s delete_s));
  print_row "%-28s %12d" "differential mismatches" !mismatches;
  {
    d_budget = budget;
    d_xbuild_s = xbuild_s;
    d_rexbuild_s = rexbuild_s;
    d_insert_s = insert_s;
    d_delete_s = delete_s;
    d_mismatches = !mismatches;
    d_kept_nodes = cval "sketch.delta_nodes_kept";
    d_deltas = cval "sketch.deltas";
  }

let ingest () =
  print_header "Streaming ingestion benchmark (parse + delta maintenance)";
  log "reps: %d (XTWIG_INGEST_REPS), floor: %.1f MB/s (XTWIG_INGEST_FLOOR_MBS)"
    ingest_reps ingest_floor_mbs;
  let parses = List.map ingest_parse_one [ "IMDB"; "XMark" ] in
  print_header "Delta maintenance vs re-XBUILD (IMDB, single-subtree edits)";
  let d = ingest_delta () in
  let worst_delta = Stdlib.max d.d_insert_s d.d_delete_s in
  let delta_speedup = d.d_rexbuild_s /. Stdlib.max 1e-9 worst_delta in
  let gate_parse =
    List.for_all
      (fun p -> p.p_reference_s /. Stdlib.max 1e-9 p.p_stream_s >= 3.0)
      parses
  in
  let gate_traversal =
    List.for_all
      (fun p -> p.p_traversal_identical && p.p_coarse_identical)
      parses
  in
  let gate_floor =
    List.for_all (fun p -> mbs p.p_bytes p.p_stream_s >= ingest_floor_mbs) parses
  in
  let gate_delta = delta_speedup >= 10.0 in
  let gate_diff = d.d_mismatches = 0 in
  List.iter
    (fun (name, pass) ->
      print_row "%-44s %12s" name (if pass then "PASS" else "FAIL"))
    [
      ("gate: streaming >= 3x reference", gate_parse);
      ("gate: traversal + coarse synopsis identical", gate_traversal);
      ("gate: streaming above recorded floor", gate_floor);
      ("gate: delta >= 10x below re-XBUILD", gate_delta);
      ("gate: differential mismatches = 0", gate_diff);
    ];
  let oc = open_out "BENCH_ingest.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"ingest\",\n";
  fprint_provenance oc;
  Printf.fprintf oc "  \"scale\": %g,\n" scale;
  Printf.fprintf oc "  \"reps\": %d,\n" ingest_reps;
  Printf.fprintf oc "  \"floor_mb_s\": %g,\n" ingest_floor_mbs;
  Printf.fprintf oc "  \"parse\": [\n";
  List.iteri
    (fun i p ->
      Printf.fprintf oc "    {\n";
      Printf.fprintf oc "      \"dataset\": %S,\n" p.p_dataset;
      Printf.fprintf oc "      \"bytes\": %d,\n" p.p_bytes;
      Printf.fprintf oc "      \"stream_s\": %.6f,\n" p.p_stream_s;
      Printf.fprintf oc "      \"reference_s\": %.6f,\n" p.p_reference_s;
      Printf.fprintf oc "      \"stream_mb_s\": %.1f,\n" (mbs p.p_bytes p.p_stream_s);
      Printf.fprintf oc "      \"reference_mb_s\": %.1f,\n"
        (mbs p.p_bytes p.p_reference_s);
      Printf.fprintf oc "      \"speedup\": %.3f,\n"
        (p.p_reference_s /. Stdlib.max 1e-9 p.p_stream_s);
      Printf.fprintf oc "      \"traversal_identical\": %b,\n"
        p.p_traversal_identical;
      Printf.fprintf oc "      \"coarse_synopsis_identical\": %b\n"
        p.p_coarse_identical;
      Printf.fprintf oc "    }%s\n" (if i = List.length parses - 1 then "" else ","))
    parses;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"delta\": {\n";
  Printf.fprintf oc "    \"dataset\": \"IMDB\",\n";
  Printf.fprintf oc "    \"budget_bytes\": %d,\n" d.d_budget;
  Printf.fprintf oc "    \"xbuild_wall_s\": %.3f,\n" d.d_xbuild_s;
  Printf.fprintf oc "    \"rexbuild_wall_s\": %.3f,\n" d.d_rexbuild_s;
  Printf.fprintf oc "    \"insert_s\": %.6f,\n" d.d_insert_s;
  Printf.fprintf oc "    \"delete_s\": %.6f,\n" d.d_delete_s;
  Printf.fprintf oc "    \"speedup_vs_rexbuild\": %.1f,\n" delta_speedup;
  Printf.fprintf oc "    \"differential_mismatches\": %d,\n" d.d_mismatches;
  Printf.fprintf oc "    \"delta_calls\": %d,\n" d.d_deltas;
  Printf.fprintf oc "    \"summary_nodes_reused\": %d\n" d.d_kept_nodes;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"gates\": {\n";
  Printf.fprintf oc "    \"parse_speedup_ge_3\": %b,\n" gate_parse;
  Printf.fprintf oc "    \"traversal_identical\": %b,\n" gate_traversal;
  Printf.fprintf oc "    \"stream_above_floor\": %b,\n" gate_floor;
  Printf.fprintf oc "    \"delta_ge_10x\": %b,\n" gate_delta;
  Printf.fprintf oc "    \"differential_zero_mismatch\": %b\n" gate_diff;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  log "wrote BENCH_ingest.json";
  if not (gate_traversal && gate_floor && gate_diff) then exit 1

(* ------------------------------------------------------------------ *)
(* Cost-based optimizer closed loop: plan every workload query from    *)
(* the sketch's estimates (the xtwig optimize path), evaluate exactly  *)
(* under the default and the chosen branch orders, gate                *)
(* order-invariance (counts bit-equal) and record per-query            *)
(* order/cost/wall-time to BENCH_optimize.json — the end-to-end demo   *)
(* that estimator accuracy buys execution speed, not just error        *)
(* numbers.                                                            *)

let opt_reps =
  match Sys.getenv_opt "XTWIG_OPT_REPS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 3)
  | None -> 3

let opt_queries_n =
  match Sys.getenv_opt "XTWIG_OPT_QUERIES" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 60)
  | None -> 60

type opt_query = {
  oq_twig : string;
  oq_orders : string;  (** semicolon-joined [node:i,j,...] tokens *)
  oq_cost : float;
  oq_default_cost : float;
  oq_changed : bool;
  oq_count : int;
  oq_match : bool;
  oq_plan_s : float;
  oq_wall_default_s : float;
  oq_wall_opt_s : float;
}

type opt_result = {
  o_dataset : string;
  o_queries : opt_query list;
  o_mismatches : int;
  o_changed : int;
  o_wall_default_s : float;
  o_wall_opt_s : float;
  o_plan_s : float;
}

let optimize_one name =
  let doc = Lazy.force (dataset name).doc in
  let t0 = now () in
  let sk = par_build doc in
  log "%s: sketch built in %.1fs (%d bytes)" name (now () -. t0)
    (Sketch.size_bytes sk);
  let queries =
    Wgen.generate
      { Wgen.paper_pv with Wgen.n_queries = opt_queries_n }
      (Prng.create 23) doc
  in
  let best_of f =
    let best = ref infinity and out = ref 0 in
    for _ = 1 to opt_reps do
      let t0 = now () in
      out := f ();
      best := Float.min !best (now () -. t0)
    done;
    (!out, !best)
  in
  let rows =
    List.map
      (fun q ->
        let t0 = now () in
        let plan = Xtwig.optimize sk q in
        let plan_s = now () -. t0 in
        let n_def, s_def = best_of (fun () -> Xtwig_eval.Eval_twig.selectivity doc q) in
        let n_opt, s_opt =
          best_of (fun () -> Xtwig.selectivity_ordered doc plan q)
        in
        let orders =
          String.concat ";"
            (List.filter_map
               (fun (tn, perm) ->
                 if Array.length perm >= 2 then
                   Some
                     (Printf.sprintf "%d:%s" tn
                        (String.concat ","
                           (Array.to_list (Array.map string_of_int perm))))
                 else None)
               (Array.to_list
                  (Array.mapi (fun i p -> (i, p)) plan.Xtwig.Opt.orders)))
        in
        {
          oq_twig = Path_printer.twig_to_string q;
          oq_orders = orders;
          oq_cost = plan.Xtwig.Opt.cost;
          oq_default_cost = plan.Xtwig.Opt.default_cost;
          oq_changed = plan.Xtwig.Opt.changed;
          oq_count = n_def;
          oq_match = n_def = n_opt;
          oq_plan_s = plan_s;
          oq_wall_default_s = s_def;
          oq_wall_opt_s = s_opt;
        })
      queries
  in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  {
    o_dataset = name;
    o_queries = rows;
    o_mismatches = List.length (List.filter (fun r -> not r.oq_match) rows);
    o_changed = List.length (List.filter (fun r -> r.oq_changed) rows);
    o_wall_default_s = sum (fun r -> r.oq_wall_default_s);
    o_wall_opt_s = sum (fun r -> r.oq_wall_opt_s);
    o_plan_s = sum (fun r -> r.oq_plan_s);
  }

let optimize_bench () =
  print_header "Cost-based branch ordering (estimator-costed vs default order)";
  log "queries: %d (XTWIG_OPT_QUERIES), reps: %d (XTWIG_OPT_REPS)" opt_queries_n
    opt_reps;
  let results = List.map optimize_one [ "IMDB"; "XMark" ] in
  print_row "%-8s %8s %9s %9s %16s %16s %9s" "" "queries" "reordered"
    "mismatch" "wall default (s)" "wall optimized" "speedup";
  List.iter
    (fun r ->
      print_row "%-8s %8d %9d %9d %16.4f %16.4f %9.2f" r.o_dataset
        (List.length r.o_queries) r.o_changed r.o_mismatches
        r.o_wall_default_s r.o_wall_opt_s
        (r.o_wall_default_s /. Stdlib.max 1e-9 r.o_wall_opt_s))
    results;
  let gate_invariance = List.for_all (fun r -> r.o_mismatches = 0) results in
  let gate_speedup =
    List.exists (fun r -> r.o_wall_opt_s < r.o_wall_default_s) results
  in
  let gate_reordered = List.exists (fun r -> r.o_changed > 0) results in
  List.iter
    (fun (name, pass) ->
      print_row "%-44s %12s" name (if pass then "PASS" else "FAIL"))
    [
      ("gate: order-invariance mismatches = 0", gate_invariance);
      ("gate: optimized order beats default somewhere", gate_speedup);
      ("gate: at least one plan reorders", gate_reordered);
    ];
  let oc = open_out "BENCH_optimize.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"optimize\",\n";
  fprint_provenance oc;
  Printf.fprintf oc "  \"scale\": %g,\n" scale;
  Printf.fprintf oc "  \"reps\": %d,\n" opt_reps;
  Printf.fprintf oc "  \"datasets\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    {\n";
      Printf.fprintf oc "      \"dataset\": %S,\n" r.o_dataset;
      Printf.fprintf oc "      \"queries\": %d,\n" (List.length r.o_queries);
      Printf.fprintf oc "      \"reordered\": %d,\n" r.o_changed;
      Printf.fprintf oc "      \"mismatches\": %d,\n" r.o_mismatches;
      Printf.fprintf oc "      \"plan_wall_s\": %.6f,\n" r.o_plan_s;
      Printf.fprintf oc "      \"wall_default_s\": %.6f,\n" r.o_wall_default_s;
      Printf.fprintf oc "      \"wall_optimized_s\": %.6f,\n" r.o_wall_opt_s;
      Printf.fprintf oc "      \"speedup\": %.3f,\n"
        (r.o_wall_default_s /. Stdlib.max 1e-9 r.o_wall_opt_s);
      Printf.fprintf oc "      \"per_query\": [\n";
      let nq = List.length r.o_queries in
      List.iteri
        (fun j q ->
          Printf.fprintf oc "        {\n";
          Printf.fprintf oc "          \"twig\": %S,\n" q.oq_twig;
          Printf.fprintf oc "          \"orders\": %S,\n" q.oq_orders;
          Printf.fprintf oc "          \"est_cost\": %.6g,\n" q.oq_cost;
          Printf.fprintf oc "          \"est_cost_default\": %.6g,\n"
            q.oq_default_cost;
          Printf.fprintf oc "          \"changed\": %b,\n" q.oq_changed;
          Printf.fprintf oc "          \"count\": %d,\n" q.oq_count;
          Printf.fprintf oc "          \"count_match\": %b,\n" q.oq_match;
          Printf.fprintf oc "          \"plan_s\": %.6f,\n" q.oq_plan_s;
          Printf.fprintf oc "          \"wall_default_s\": %.6f,\n"
            q.oq_wall_default_s;
          Printf.fprintf oc "          \"wall_optimized_s\": %.6f\n"
            q.oq_wall_opt_s;
          Printf.fprintf oc "        }%s\n" (if j = nq - 1 then "" else ","))
        r.o_queries;
      Printf.fprintf oc "      ]\n";
      Printf.fprintf oc "    }%s\n"
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"gates\": {\n";
  Printf.fprintf oc "    \"order_invariance_zero_mismatch\": %b,\n"
    gate_invariance;
  Printf.fprintf oc "    \"optimized_beats_default_somewhere\": %b,\n"
    gate_speedup;
  Printf.fprintf oc "    \"some_plan_reorders\": %b\n" gate_reordered;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  log "wrote BENCH_optimize.json";
  if not gate_invariance then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)

let micro () =
  let open Bechamel in
  print_header "Micro-benchmarks (bechamel, monotonic clock)";
  let imdb = Lazy.force (dataset "imdb").doc in
  let coarse = Sketch.default_of_doc imdb in
  let q =
    match
      Xtwig_path.Path_parser.parse_twig_res
        "for t0 in //movie, t1 in t0/actor, t2 in t0/producer, t3 in t0/keyword"
    with
    | Ok t -> t
    | Error e -> failwith (Xtwig_util.Xerror.to_string e)
  in
  let small = Xtwig_datagen.Imdb.generate ~scale:0.02 () in
  let cst = Cst.build imdb in
  let tests =
    [
      (* Table 1: dataset statistics = coarsest synopsis construction *)
      Test.make ~name:"table1-coarsest-synopsis"
        (Staged.stage (fun () -> ignore (Sketch.default_of_doc small)));
      (* Table 2: workload truth = exact twig evaluation *)
      Test.make ~name:"table2-exact-selectivity"
        (Staged.stage (fun () -> ignore (Xtwig_eval.Eval_twig.selectivity imdb q)));
      (* Figures 9(a,b): XSKETCH estimation *)
      Test.make ~name:"fig9ab-xsketch-estimate"
        (Staged.stage (fun () -> ignore (Est.estimate coarse q)));
      (* Figure 9(c): CST estimation *)
      Test.make ~name:"fig9c-cst-estimate"
        (Staged.stage (fun () -> ignore (Cst.estimate cst q)));
      (* One XBUILD scoring step: apply + score a full candidate pool *)
      (let step_sk = Sketch.default_of_doc small in
       let step_truth = truth_oracle small in
       let step_queries =
         Wgen.generate { Wgen.paper_p with Wgen.n_queries = 14 }
           (Prng.create 23) small
       in
       List.iter (fun sq -> ignore (step_truth sq)) step_queries;
       let step_pool =
         Xtwig_sketch.Refinement.gen_candidates ~count:8 step_sk
           (Prng.create 29)
       in
       Test.make ~name:"xbuild-step-score-candidates"
         (Staged.stage (fun () ->
              List.iter
                (fun op ->
                  let refined = Xtwig_sketch.Refinement.apply step_sk op in
                  ignore
                    (Xbuild.workload_error refined ~truth:step_truth
                       step_queries))
                step_pool)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> print_row "%-32s %12.2f ns/run" name t
          | _ -> print_row "%-32s %12s" name "(no estimate)")
        analyzed)
    tests

(* ------------------------------------------------------------------ *)

let all () =
  table1 ();
  table2 ();
  fig9a ();
  fig9b ();
  fig9c ();
  singlepath ();
  negative ();
  ablation ();
  micro ()

let () =
  let t0 = now () in
  (* [mode] [--trace FILE] in either order; mode defaults to "all" *)
  let cmd, trace_file =
    let mode = ref None and trace = ref None in
    let i = ref 1 in
    let n = Array.length Sys.argv in
    while !i < n do
      (match Sys.argv.(!i) with
      | "--trace" when !i + 1 < n ->
          incr i;
          trace := Some Sys.argv.(!i)
      | "--trace" ->
          prerr_endline "--trace requires a FILE argument";
          exit 1
      | m -> mode := Some m);
      incr i
    done;
    (Option.value ~default:"all" !mode, !trace)
  in
  if trace_file <> None then Trace.enable ();
  let m0 = Metrics.snapshot () in
  (match cmd with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "fig9a" -> fig9a ()
  | "fig9b" -> fig9b ()
  | "fig9c" -> fig9c ()
  | "singlepath" -> singlepath ()
  | "negative" -> negative ()
  | "ablation" -> ablation ()
  | "micro" -> micro ()
  | "xbuild" -> xbuild_bench ()
  | "xbuild-par" ->
      xbuild_par_bench ();
      write_parallel_json ()
  | "estimate-batch" ->
      estimate_batch_bench ();
      write_parallel_json ()
  | "parallel" ->
      xbuild_par_bench ();
      estimate_batch_bench ();
      write_parallel_json ()
  | "fault-audit" -> fault_audit ()
  | "scaling" -> scaling_bench ()
  | "ingest" -> ingest ()
  | "optimize" -> optimize_bench ()
  | "serve" -> Serve_bench.run ()
  | "all" -> all ()
  | other ->
      Printf.eprintf
        "unknown benchmark %S (expected \
         table1|table2|fig9a|fig9b|fig9c|singlepath|ablation|micro|xbuild|\
         xbuild-par|estimate-batch|parallel|fault-audit|scaling|ingest|\
         optimize|serve|all)\n"
        other;
      exit 1);
  (match trace_file with
  | Some path ->
      Trace.dump path;
      let dropped = Trace.dropped () in
      if dropped > 0 then log "trace buffer full: dropped %d events" dropped;
      log "wrote %s" path
  | None -> ());
  write_metrics_json ~since:m0 "BENCH_metrics.json";
  report_metrics ~since:m0;
  log "total wall time %.0fs" (now () -. t0)
