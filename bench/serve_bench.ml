(* Open-loop load benchmark for the xtwigd serving layer, recorded to
   BENCH_serve.json.

   The generator fixes every request's send timestamp up front
   (request i fires at t0 + i/rate) and measures latency against that
   schedule, not against the actual send — a server that stalls
   delays every queued request's measured latency, so there is no
   coordinated omission. The run also performs one hot reload halfway
   through while requests are in flight: the live sketch file is
   atomically replaced and a reload request enqueued, and every served
   answer must match — byte for byte — the direct-engine answer of
   either the old or the new synopsis. Shed requests (typed overload
   responses) are counted separately and excluded from the latency
   percentiles.

   Observability run (the default): every request carries a client
   trace id on the wire, the whole run is traced (client spans,
   server phase spans and engine/plan spans land in one Chrome trace,
   written to XTWIG_SERVE_TRACE), the server's structured JSONL log
   goes to XTWIG_SERVE_LOG, a bench-tenant SLO (p99:50ms, err:1%) is
   attached, and the report gains per-phase
   (queue_wait/coalesce/execute/write) percentiles plus the SLO burn
   rate. XTWIG_SERVE_OBS=0 turns all of it off — the baseline the CI
   overhead gate compares against.

   XTWIG_SERVE_RPS (default 200), XTWIG_SERVE_SECONDS (default 5) and
   XTWIG_SERVE_QUEUE_CAP (default 64) shape the load. *)

open Harness
module P = Xtwig_serve.Protocol
module Server = Xtwig_serve.Server
module Catalog = Xtwig_serve.Catalog
module Xerror = Xtwig.Xerror
module Fault = Xtwig_fault.Fault
module Trace = Xtwig_obs.Trace
module Log = Xtwig_obs.Log
module Slo = Xtwig_obs.Slo

let ok_exn = function
  | Ok v -> v
  | Error e -> failwith (Xerror.to_string e)

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( try float_of_string s with _ -> default)
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string s with _ -> default)
  | None -> default

let temp_path suffix =
  let p = Filename.temp_file "xtwig_serve_bench" suffix in
  Sys.remove p;
  p

(* direct-engine answers for [queries], encoded exactly as the server
   encodes them — the correctness oracle for served responses *)
let direct_answers sketch queries =
  let engine = ok_exn (Xtwig.open_sketch_session sketch) in
  Fun.protect
    ~finally:(fun () -> Xtwig.close_session engine)
    (fun () ->
      let answers = ok_exn (Xtwig.estimate_batch engine queries) in
      Array.of_list (List.map P.encode_answer answers))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(Stdlib.min (n - 1) (int_of_float (float_of_int (n - 1) *. q)))

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
  in
  m = 0 || go 0

(* every client-supplied trace id is [trace_base + request index]: big
   enough to never collide with the engine's minted ids in this run *)
let trace_base = 1_000_000

(* the span names carrying [tid] in the captured trace — the
   acceptance check is that one sampled request's id appears on the
   client side, in the serving layer, and inside the engine *)
let names_with_tid json tid =
  let needle = Printf.sprintf "\"trace_id\":\"%d\"" tid in
  String.split_on_char '\n' json
  |> List.filter_map (fun line ->
         if has_sub line needle then (
           (* line format: {"name":"...",... *)
           let pat = "\"name\":\"" in
           let plen = String.length pat in
           let n = String.length line in
           let rec find i =
             if i + plen > n then None
             else if String.sub line i plen = pat then Some (i + plen)
             else find (i + 1)
           in
           match find 0 with
           | None -> None
           | Some start -> (
               match String.index_from_opt line start '"' with
               | Some stop -> Some (String.sub line start (stop - start))
               | None -> None))
         else None)

let phase_view snap phase =
  List.find_map
    (fun (e : Metrics.entry) ->
      if
        String.equal e.Metrics.name "serve.phase.seconds"
        && List.assoc_opt "phase" e.Metrics.labels = Some phase
      then
        match e.Metrics.value with Metrics.Histogram h -> Some h | _ -> None
      else None)
    snap

let run () =
  print_header "xtwigd open-loop serving benchmark (IMDB)";
  let rps = env_float "XTWIG_SERVE_RPS" 200.0 in
  let seconds = env_float "XTWIG_SERVE_SECONDS" 5.0 in
  let queue_cap = env_int "XTWIG_SERVE_QUEUE_CAP" 64 in
  let obs = Sys.getenv_opt "XTWIG_SERVE_OBS" <> Some "0" in
  let trace_path =
    Option.value (Sys.getenv_opt "XTWIG_SERVE_TRACE")
      ~default:"BENCH_serve_trace.json"
  in
  let log_path =
    Option.value (Sys.getenv_opt "XTWIG_SERVE_LOG")
      ~default:"BENCH_serve_log.jsonl"
  in
  let doc = Lazy.force (dataset "imdb").doc in
  let doc_path = temp_path ".xml" and live = temp_path ".sketch" in
  ok_exn (Xtwig.doc_to_file doc_path doc);
  let sk_old = ok_exn (Xtwig.build_sketch ~budget:4000 ~seed:1 doc) in
  let sk_new = ok_exn (Xtwig.build_sketch ~budget:8000 ~seed:2 doc) in
  ok_exn (Xtwig.save_sketch sk_old live);
  let queries =
    Wgen.generate { Wgen.paper_p with Wgen.n_queries = 40 } (Prng.create 77) doc
  in
  let q_strs = Array.of_list (List.map Xtwig.twig_to_string queries) in
  let n_qs = Array.length q_strs in
  let old_answers = direct_answers sk_old queries in
  let new_answers = direct_answers sk_new queries in
  (* an XTWIG_FAULT_SPEC scenario (the CI smoke uses 1% on the
     request-level serve.* points) is installed after the oracle
     answers are computed: injected faults then surface as typed
     engine-error responses, counted separately from real errors *)
  let fault_spec =
    match Fault.env_spec () with
    | Ok (Some sp) ->
        Fault.install sp;
        let s = Fault.spec_to_string sp in
        log "fault scenario: %s" s;
        Some s
    | Ok None -> None
    | Error e -> failwith ("XTWIG_FAULT_SPEC: " ^ e)
  in
  if obs then begin
    Trace.reset ();
    Trace.enable ();
    if Sys.file_exists log_path then Sys.remove log_path;
    Log.enable ~level:Log.Info ~path:log_path ();
    log "observability on: trace -> %s, log -> %s" trace_path log_path
  end
  else log "observability off (XTWIG_SERVE_OBS=0): overhead baseline run";
  let slo_objective = { Slo.p99_s = Some 0.05; err_rate = Some 0.01 } in
  let uncaught = Metrics.counter "serve.uncaught" in
  let uncaught0 = Metrics.counter_value uncaught in
  let m0 = Metrics.snapshot () in
  let sock = temp_path ".sock" in
  let cfg =
    {
      Server.default_config with
      listen = `Unix sock;
      queue_cap;
      slo = (if obs then [ ("bench", slo_objective) ] else []);
    }
  in
  let server =
    ok_exn
      (Server.create cfg [ ("bench", Catalog.source ~sketch_path:live doc_path) ])
  in
  let server_th = Thread.create Server.serve server in
  let client = ok_exn (P.Client.connect_unix sock) in
  let n = Stdlib.max 1 (int_of_float (rps *. seconds)) in
  let reload_at = n / 2 in
  let reload_id = n in
  log "open-loop: %d requests at %.0f req/s over %.1fs, reload at request %d"
    n rps seconds reload_at;
  (* fixed schedule: request i fires at t0 + i/rps, regardless of how
     the server is doing *)
  let t0 = now () +. 0.1 in
  let sched i = t0 +. (float_of_int i /. rps) in
  let sender () =
    for i = 0 to n - 1 do
      let d = sched i -. now () in
      if d > 0.0 then Thread.delay d;
      if i = reload_at then begin
        ok_exn (Xtwig.save_sketch sk_new live);
        ok_exn (P.Client.send client ~id:reload_id (P.Reload "bench"))
      end;
      ok_exn
        (P.Client.send client ~id:i
           (P.Estimate
              {
                tenant = "bench";
                query = q_strs.(i mod n_qs);
                trace = (if obs then Some (trace_base + i) else None);
              }))
    done
  in
  let sender_th = Thread.create sender () in
  let lat = Array.make n Float.nan in
  let served = ref 0
  and shed = ref 0
  and errors = ref 0
  and match_old = ref 0
  and match_new = ref 0
  and mismatched = ref 0
  and injected = ref 0
  and first_served = ref None
  and reload_ok = ref false in
  for _ = 0 to n do
    let id, resp = ok_exn (P.Client.recv client) in
    let t_recv = now () in
    if id = reload_id then begin
      match resp with
      | P.Reply _ -> reload_ok := true
      | P.Fail (Xerror.Engine _) when fault_spec <> None ->
          incr injected;
          log "reload hit an injected fault (typed response, old engine serving)"
      | P.Fail e -> log "ERROR: reload failed: %s" (Xerror.to_string e)
    end
    else
      match resp with
      | P.Reply body ->
          incr served;
          if !first_served = None then first_served := Some id;
          let l = t_recv -. sched id in
          lat.(id) <- l;
          (* the client half of the request's trace: a retrospective X
             span over schedule-to-receive, carrying the same id the
             server-side spans were stamped with *)
          if obs then begin
            let dur_ns = Int64.of_float (Float.max l 0.0 *. 1e9) in
            Trace.complete
              ~args:[ ("trace_id", string_of_int (trace_base + id)) ]
              ~name:"client.request"
              ~start_ns:(Int64.sub (Trace.now_ns ()) dur_ns)
              ~dur_ns ()
          end;
          if String.equal body old_answers.(id mod n_qs) then incr match_old
          else if String.equal body new_answers.(id mod n_qs) then incr match_new
          else incr mismatched
      | P.Fail (Xerror.Overload _) -> incr shed
      | P.Fail (Xerror.Engine _) when fault_spec <> None -> incr injected
      | P.Fail e ->
          incr errors;
          log "ERROR: request %d: %s" id (Xerror.to_string e)
  done;
  Thread.join sender_th;
  P.Client.close client;
  Server.stop server;
  Thread.join server_th;
  if fault_spec <> None then Fault.disable ();
  let uncaught_n = Metrics.counter_value uncaught - uncaught0 in
  let mdiff = Metrics.diff m0 (Metrics.snapshot ()) in
  let sorted =
    let l = Array.to_list lat in
    let l = List.filter (fun x -> not (Float.is_nan x)) l in
    let a = Array.of_list l in
    Array.sort compare a;
    a
  in
  let p50 = percentile sorted 0.50 *. 1e3 in
  let p99 = percentile sorted 0.99 *. 1e3 in
  let p999 = percentile sorted 0.999 *. 1e3 in
  let shed_rate = float_of_int !shed /. float_of_int n in
  (* per-phase breakdown, read back from the server's labeled
     histograms: where a p999 spike actually went *)
  let phases = [ "queue_wait"; "coalesce"; "execute"; "write" ] in
  let phase_ms =
    List.map
      (fun ph ->
        match phase_view mdiff ph with
        | Some h when h.Metrics.count > 0 ->
            ( ph,
              Some
                ( Metrics.percentile_of h 50.0 *. 1e3,
                  Metrics.percentile_of h 99.0 *. 1e3,
                  Metrics.percentile_of h 99.9 *. 1e3 ) )
        | _ -> (ph, None))
      phases
  in
  let burn = if obs then Slo.burn_rate (Server.slo server) "bench" else 0.0 in
  (* capture + validate the trace, and check propagation: a sampled
     served request's id must appear on a client span, a serving-layer
     span and an engine/plan span in the same file *)
  let trace_valid, trace_spans, trace_propagated =
    if not obs then (true, 0, false)
    else begin
      Trace.disable ();
      let json = Trace.to_json_string () in
      let oc = open_out trace_path in
      output_string oc json;
      close_out oc;
      log "wrote %s" trace_path;
      let valid, spans =
        match Trace.validate_string json with
        | Ok s -> (true, s)
        | Error e ->
            log "ERROR: trace validation failed: %s" e;
            (false, 0)
      in
      let propagated =
        match !first_served with
        | None -> false
        | Some id ->
            let names = names_with_tid json (trace_base + id) in
            let mem n = List.exists (String.equal n) names in
            let engine_side =
              List.exists
                (fun n ->
                  has_sub n "engine." || has_sub n "plan."
                  || has_sub n "estimator.")
                names
            in
            mem "client.request"
            && (mem "serve.batch" || mem "serve.queue_wait")
            && engine_side
      in
      (valid, spans, propagated)
    end
  in
  if obs then begin
    Log.flush ();
    log "structured log: %d events -> %s" (Log.emitted ()) log_path;
    Log.disable ()
  end;
  (* under injection, typed engine-error responses (including a faulted
     reload) are the expected outcome, not a correctness failure *)
  let correct =
    !mismatched = 0 && !errors = 0 && uncaught_n = 0
    && (fault_spec <> None || !reload_ok)
    && trace_valid
    && ((not obs) || !first_served = None || trace_propagated)
  in
  print_row "%-28s %12d" "requests" n;
  print_row "%-28s %12d" "served" !served;
  print_row "%-28s %12d" "shed (typed overload)" !shed;
  print_row "%-28s %12.4f" "shed rate" shed_rate;
  print_row "%-28s %12d" "injected (typed engine err)" !injected;
  print_row "%-28s %12d" "errors" !errors;
  print_row "%-28s %12.3f" "latency p50 (ms)" p50;
  print_row "%-28s %12.3f" "latency p99 (ms)" p99;
  print_row "%-28s %12.3f" "latency p999 (ms)" p999;
  List.iter
    (fun (ph, v) ->
      match v with
      | Some (p50, p99, p999) ->
          print_row "%-28s p50=%8.3f p99=%8.3f p999=%8.3f"
            ("phase " ^ ph ^ " (ms)") p50 p99 p999
      | None -> ())
    phase_ms;
  if obs then begin
    print_row "%-28s %12.3f" "slo burn rate" burn;
    print_row "%-28s %12b" "trace valid" trace_valid;
    print_row "%-28s %12d" "trace spans" trace_spans;
    print_row "%-28s %12b" "trace propagated" trace_propagated
  end;
  print_row "%-28s %12d" "answers = old synopsis" !match_old;
  print_row "%-28s %12d" "answers = new synopsis" !match_new;
  print_row "%-28s %12d" "answers matching neither" !mismatched;
  print_row "%-28s %12b" "reload acknowledged" !reload_ok;
  print_row "%-28s %12d" "serve.uncaught" uncaught_n;
  if !mismatched > 0 then
    log "ERROR: %d served answers matched neither synopsis!" !mismatched;
  if !match_old = 0 || !match_new = 0 then
    log
      "NOTE: reload boundary not straddled (old=%d new=%d) — the load \
       finished before/after the swap"
      !match_old !match_new;
  let oc = open_out "BENCH_serve.json" in
  let num v = Metrics.json_number v in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"serve\",\n";
  fprint_provenance oc;
  Printf.fprintf oc "  \"dataset\": \"IMDB\",\n";
  Printf.fprintf oc "  \"scale\": %g,\n" scale;
  Printf.fprintf oc "  \"rps\": %g,\n" rps;
  Printf.fprintf oc "  \"seconds\": %g,\n" seconds;
  Printf.fprintf oc "  \"queue_cap\": %d,\n" queue_cap;
  Printf.fprintf oc "  \"observability\": %b,\n" obs;
  Printf.fprintf oc "  \"requests\": %d,\n" n;
  Printf.fprintf oc "  \"served\": %d,\n" !served;
  Printf.fprintf oc "  \"shed\": %d,\n" !shed;
  Printf.fprintf oc "  \"shed_rate\": %.6f,\n" shed_rate;
  (match fault_spec with
  | Some s -> Printf.fprintf oc "  \"fault_spec\": %S,\n" s
  | None -> Printf.fprintf oc "  \"fault_spec\": null,\n");
  Printf.fprintf oc "  \"injected\": %d,\n" !injected;
  Printf.fprintf oc "  \"errors\": %d,\n" !errors;
  Printf.fprintf oc "  \"latency_p50_ms\": %s,\n" (num p50);
  Printf.fprintf oc "  \"latency_p99_ms\": %s,\n" (num p99);
  Printf.fprintf oc "  \"latency_p999_ms\": %s,\n" (num p999);
  Printf.fprintf oc "  \"phases\": {\n";
  List.iteri
    (fun i (ph, v) ->
      let sep = if i = List.length phase_ms - 1 then "" else "," in
      match v with
      | Some (p50, p99, p999) ->
          Printf.fprintf oc
            "    \"%s\": {\"p50_ms\": %s, \"p99_ms\": %s, \"p999_ms\": %s}%s\n"
            ph (num p50) (num p99) (num p999) sep
      | None -> Printf.fprintf oc "    \"%s\": null%s\n" ph sep)
    phase_ms;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"slo\": {\"tenant\": \"bench\", \"objective\": %S, \"burn_rate\": %s},\n"
    (if obs then Slo.objective_text slo_objective else "(none)")
    (num burn);
  Printf.fprintf oc "  \"trace_valid\": %b,\n" trace_valid;
  Printf.fprintf oc "  \"trace_spans\": %d,\n" trace_spans;
  Printf.fprintf oc "  \"trace_propagated\": %b,\n" trace_propagated;
  Printf.fprintf oc "  \"reload_ok\": %b,\n" !reload_ok;
  Printf.fprintf oc "  \"answers_old_synopsis\": %d,\n" !match_old;
  Printf.fprintf oc "  \"answers_new_synopsis\": %d,\n" !match_new;
  Printf.fprintf oc "  \"answers_mismatched\": %d,\n" !mismatched;
  Printf.fprintf oc "  \"uncaught\": %d,\n" uncaught_n;
  Printf.fprintf oc "  \"correct\": %b\n" correct;
  Printf.fprintf oc "}\n";
  close_out oc;
  log "wrote BENCH_serve.json";
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ doc_path; live ];
  if not correct then exit 1
