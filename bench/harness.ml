(* Shared machinery of the reproduction benchmarks: datasets, truth
   oracles, XBUILD drivers with size-grid snapshots, error evaluation.

   Scaling note (see EXPERIMENTS.md): the paper's datasets carry many
   more distinct tags than our simulations, so its coarsest synopses
   are ~8-12KB where ours are ~0.7-2.7KB. Synopsis budgets here are
   therefore expressed as multiples of the coarsest size; the grids
   below span the same 4x-40x relative range as the paper's 8KB-50KB
   axis. *)

module Doc = Xtwig_xml.Doc
module G = Xtwig_synopsis.Graph_synopsis
module Sketch = Xtwig_sketch.Sketch
module Est = Xtwig_sketch.Estimator
module Xbuild = Xtwig_sketch.Xbuild
module Cst = Xtwig_cst.Cst
module Wgen = Xtwig_workload.Wgen
module EM = Xtwig_workload.Error_metric
module Prng = Xtwig_util.Prng

type dataset = { name : string; doc : Doc.t Lazy.t }

(* XTWIG_SCALE shrinks every dataset for quick validation runs;
   published numbers use the default 1.0. *)
let scale =
  match Sys.getenv_opt "XTWIG_SCALE" with
  | Some s -> ( try float_of_string s with _ -> 1.0)
  | None -> 1.0

let datasets =
  [
    { name = "XMark"; doc = lazy (Xtwig_datagen.Xmark.generate ~scale ()) };
    { name = "IMDB"; doc = lazy (Xtwig_datagen.Imdb.generate ~scale ()) };
    { name = "SProt"; doc = lazy (Xtwig_datagen.Sprot.generate ~scale ()) };
  ]

let dataset name =
  List.find (fun d -> String.lowercase_ascii d.name = String.lowercase_ascii name) datasets

let kb bytes = float_of_int bytes /. 1024.0

let now () = Unix.gettimeofday ()

(* Provenance for the BENCH_*.json artifacts: perf numbers are only
   comparable across runs when the artifact names the code revision,
   the host parallelism and the dataset scale that produced them. *)
let git_commit =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
       let line = try String.trim (input_line ic) with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

let fprint_provenance oc =
  Printf.fprintf oc "  \"git_commit\": %S,\n" (Lazy.force git_commit);
  Printf.fprintf oc "  \"recommended_domain_count\": %d,\n"
    (Domain.recommended_domain_count ())

let log fmt = Printf.ksprintf (fun s -> Printf.eprintf "[bench] %s\n%!" s) fmt

(* ------------------------------------------------------------------ *)
(* Truth oracles                                                       *)

let t_truth = Xtwig_util.Counters.timer "bench.truth_ns"

let truth_oracle doc =
  let cache : (string, float) Hashtbl.t = Hashtbl.create 4096 in
  fun q ->
    let key = Xtwig_path.Path_printer.twig_to_string q in
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
        let v =
          Xtwig_util.Counters.time t_truth @@ fun () ->
          float_of_int (Xtwig_eval.Eval_twig.selectivity doc q)
        in
        Hashtbl.add cache key v;
        v

module Metrics = Xtwig_obs.Metrics

(* counters of a metrics snapshot (typically a [Metrics.diff] delta)
   as flat (name, value) rows — labeled counters render their labels
   into the name, e.g. xbuild.ops_applied{op.kind=f-stabilize} *)
let counters_of snap =
  List.filter_map
    (fun (e : Metrics.entry) ->
      match e.Metrics.value with
      | Metrics.Counter n ->
          let labels =
            match e.Metrics.labels with
            | [] -> ""
            | ls ->
                "{"
                ^ String.concat ","
                    (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) ls)
                ^ "}"
          in
          Some (e.Metrics.name ^ labels, n)
      | _ -> None)
    snap

(* dump the run's metrics delta to stderr (XTWIG_COUNTERS=1) *)
let report_metrics ~since =
  if Sys.getenv_opt "XTWIG_COUNTERS" <> None then
    prerr_string (Metrics.render (Metrics.diff since (Metrics.snapshot ())))

(* every bench mode leaves a machine-readable metrics snapshot next to
   its BENCH json, with the provenance fields spliced into the same
   object (the dump must stay a single JSON object — check_trace) *)
let write_metrics_json ~since path =
  let body = Metrics.to_json (Metrics.diff since (Metrics.snapshot ())) in
  (* to_json output starts with "{\n"; re-open it with provenance *)
  let tail = String.sub body 2 (String.length body - 2) in
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  fprint_provenance oc;
  Printf.fprintf oc "  \"scale\": %g,\n" scale;
  output_string oc tail;
  close_out oc;
  log "wrote %s" path

let truths_of truth queries = Array.of_list (List.map truth queries)

let estimates_of sk queries =
  Array.of_list (List.map (fun q -> Est.estimate sk q) queries)

(* ------------------------------------------------------------------ *)
(* XBUILD with snapshots on a size grid                                *)

type curve_point = { size_bytes : int; error : float }

(* Builds to the largest grid budget, evaluating the held-out workload
   at the first crossing of every grid size. *)
let error_curve ?(seed = 42) ?(candidates = 8) ?(max_steps = 700)
    ~scoring_spec ~eval_queries ~grid doc =
  let truth = truth_oracle doc in
  let truths = truths_of truth eval_queries in
  let eval sk = EM.average_error ~truths ~estimates:(estimates_of sk eval_queries) in
  let workload prng ~focus = Wgen.generate ~focus scoring_spec prng doc in
  let grid = List.sort compare grid in
  let max_budget = List.fold_left Stdlib.max 0 grid in
  let remaining = ref grid in
  let points = ref [] in
  let take sk size =
    match !remaining with
    | g :: rest when size >= g ->
        remaining := rest;
        let e = eval sk in
        log "  snapshot %6.1f KB  error %.3f" (kb size) e;
        points := { size_bytes = size; error = e } :: !points
    | _ -> ()
  in
  let coarse = Sketch.default_of_doc doc in
  take coarse (Sketch.size_bytes coarse);
  let final =
    Xbuild.build ~seed ~candidates ~max_steps ~workload ~truth ~budget:max_budget
      ~on_step:(fun sk info -> take sk info.Xbuild.size)
      doc
  in
  (* record the end point if the last grid budget was never crossed *)
  (match !remaining with
  | _ :: _ ->
      let size = Sketch.size_bytes final in
      if
        not (List.exists (fun p -> p.size_bytes = size) !points)
      then begin
        let e = eval final in
        log "  final    %6.1f KB  error %.3f" (kb size) e;
        points := { size_bytes = size; error = e } :: !points
      end
  | [] -> ());
  (List.rev !points, final)

(* grid as multiples of the coarsest synopsis size *)
let grid_of doc multiples =
  let coarse = Sketch.size_bytes (Sketch.default_of_doc doc) in
  List.map (fun m -> int_of_float (float_of_int coarse *. m)) multiples

let default_multiples = [ 1.0; 2.0; 4.0; 8.0; 16.0; 24.0 ]

(* ------------------------------------------------------------------ *)
(* Table printing                                                      *)

let print_header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let print_row fmt = Printf.ksprintf print_endline fmt
